(** Streaming certification: the incremental CSR / Theorem-2 checker.

    Consumes trace events one at a time — operations as sites execute them,
    serialization events as the GTM admits them, commit/abort decisions,
    site and global declarations — and maintains the conflict index, the
    global CSR graph and the per-site [ser_k] ordering obligations online.
    Cycle detection is incremental (a Pearce–Kelly ordered-graph engine), so
    a violation surfaces at the exact event that closes the cycle, with the
    same concrete witness format as the batch {!Certifier}.

    Memory is O(active window), not O(run length): once a committed
    transaction's position is {e stable} — every earlier operation at each
    of its sites belongs to a decided transaction and no live predecessor
    remains — its conflict-index entries, graph node and serialization
    entries are garbage-collected and the transaction is appended to the
    rolling certificate prefix. The stability rule is safe because a stable
    transaction can never again acquire an {e incoming} edge, so no future
    cycle can pass through it (see DESIGN.md §13 for the argument).

    On clean prefixes the checker emits rolling {!checkpoint}s chained by a
    digest; with [retain_order] the embedded {!Certificate.t} values are
    independently re-checkable by {!Certificate.verify} against the event
    prefix materialized as a {!Trace.t}. *)

open Mdbs_model

type event =
  | Site of Types.sid * Types.protocol_kind option
      (** Declare a site (before its first operation). *)
  | Shard of Types.sid * int
      (** Informational: the GTM scheduling shard that drives this site's
          ser events (sharded runtimes tag their feed at startup). Carries
          no certification obligation — shard-disjoint ser subsequences are
          merged into the one per-site order checked by Theorem 2. *)
  | Global of Types.tid * Types.sid list
      (** Declare a global transaction with its site-visit order. *)
  | Op of Types.sid * Types.tid * Op.action
      (** The next operation of the site's local schedule, in execution
          order. [Commit]/[Abort] double as the per-site decision. *)
  | Ser of Types.tid * Types.sid
      (** The next serialization event of [ser(S)]. *)
  | End of Types.tid
      (** The transaction finished: the feeder promises no further {e data}
          operations for it. With [strict_end], sites without a recorded
          terminal are closed out as not-committed-there; without it (the
          live feed, where a crash-compensation abort can trail the GTM's
          notion of completion), late [Commit]/[Abort] operations are still
          accepted and garbage collection waits for them. *)

type t

val create :
  ?strict_end:bool ->
  ?assume_committed:bool ->
  ?retain_order:bool ->
  ?gc_interval:int ->
  unit ->
  t
(** [strict_end] (default [true]): see {!event.End}. [assume_committed]
    (default [false]): engine-level feeds carry no site schedules, hence no
    commits; treat every declared global with a serialization event as
    committed for the Theorem-2 obligation, mirroring the batch certifier's
    fallback. [retain_order] (default [true]): retain the stable order
    prefix so {!certificate} can emit full certificates; switch off for
    soak runs to keep memory strictly O(active window). [gc_interval]
    (default [256]): events between stability sweeps. *)

val feed : t -> event -> unit
(** Consume one event. O(1) amortized; a no-op once a violation is found. *)

val feed_list : t -> event list -> unit

val violated : t -> bool

val verdict : t -> Certifier.counterexample option
(** The first violation found, with its concrete witness cycle. *)

(** {1 Rolling certificates} *)

type checkpoint = {
  cp_seq : int;
  cp_events : int;  (** Events consumed up to this checkpoint. *)
  cp_committed : int;
  cp_stable : int;  (** Committed transactions retired to the stable prefix. *)
  cp_live : int;  (** Transactions still in the active window. *)
  cp_evicted : Types.tid list;
      (** Stable-prefix extension since the previous checkpoint. *)
  cp_live_order : Types.tid list;
      (** Current serial order of the live committed transactions. *)
  cp_digest : string;
      (** Chain digest over (previous digest, evicted, live order). *)
  cp_cert : Certificate.t option;  (** With [retain_order] only. *)
  cp_cert_t2 : Certificate.t option;
}

val checkpoint : t -> checkpoint
(** Runs a stability sweep, then snapshots and extends the digest chain. *)

val verify_chain : checkpoint list -> (unit, string) result
(** Re-derive every digest from the genesis value and the per-checkpoint
    order deltas; [Error] pinpoints the first broken link. *)

val verify_link : ?prev:checkpoint -> checkpoint -> (unit, string) result
(** One link of {!verify_chain}: check [cp] against its predecessor
    ([~prev] omitted = anchor the first checkpoint at the genesis digest).
    This is the O(1)-state form the live feed uses to verify each
    checkpoint on arrival instead of retaining the whole chain. *)

val certificate : t -> Certificate.t option
(** Rolling CSR certificate (stable prefix ++ live order); [None] without
    [retain_order]. *)

val certificate_t2 : t -> Certificate.t option
(** Rolling Theorem-2 certificate; [None] without [retain_order] or when no
    serialization events were consumed. *)

(** {1 Introspection} *)

type stats = {
  events : int;
  live_txns : int;  (** Transaction records currently held — the window. *)
  peak_live_txns : int;
  stable_csr : int;
  stable_t2 : int;
  committed : int;
  live_edges : int;  (** Materialized conflict edges currently held. *)
  checkpoints : int;
}

val stats : t -> stats

val checkpoint_to_json : checkpoint -> Json.t

val pp_checkpoint : Format.formatter -> checkpoint -> unit

(** {1 Feeding from a captured trace} *)

val events_of_trace : Trace.t -> event list
(** Replay a captured trace as an event stream: declarations, then the site
    schedules interleaved round-robin (per-site order preserved), then the
    serialization events, then an [End] per transaction. *)

val of_trace : Trace.t -> t
(** [create] with the flags the batch certifier would use on [trace]
    ([strict_end], [assume_committed] iff the trace carries no commits),
    fed with [events_of_trace]. *)
