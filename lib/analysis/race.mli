(** Happens-before race detection over recorded traces.

    Rebuilds the happens-before relation a correct execution should have
    enforced and flags conflicting same-site accesses that it leaves
    unordered — accesses whose recorded order was accidental (a scheduling
    fluke) rather than guaranteed by any synchronization, the signature of
    a concurrency-control gap (e.g. the no-control baseline, or basic TO
    executing a conflicting access before the earlier transaction
    committed).

    Happens-before edges:
    - {b program order}: a transaction's operations, sequenced across its
      sites in visit order (GTM1 submits a global transaction's operations
      strictly sequentially, §2.3: bodies site by site, then prepares, then
      commits);
    - {b commit synchronization}: [T]'s commit at a site happens before
      every later conflicting access at that site — the ordering a strict
      scheduler actually enforces.

    Each committed operation gets a {e per-transaction vector timestamp}:
    component [t] is the frontier (program-order position, +1) of
    transaction [t]'s operations that happen before it — transactions play
    the role threads play in classical vector-clock race detection. Two
    conflicting accesses [a < b] at a site race iff
    [clock(b).(txn a) < chain_pos(a) + 1], i.e. the relation does not order
    [a] before [b]. The test is exact for the reconstructed relation: a
    pair it orders is never reported, and a reported race is genuinely
    unordered by it. *)

open Mdbs_model

type race = {
  site : Types.sid;
  item : Item.t;
  first : Conflicts.opref;  (** The earlier access in the recorded schedule. *)
  second : Conflicts.opref;
}

val detect : Trace.t -> race list
(** Races over the committed projection, in schedule order of the later
    access. *)

val pp_race : Format.formatter -> race -> unit

val race_to_json : race -> Json.t
