(** Indexed conflict extraction over a trace.

    Produces the conflict relation of the committed projection with {e op
    witnesses}: each edge carries the two concrete operations (site, index
    in the local schedule, action) that realize it, so certifier
    counterexamples and lint diagnostics can point at the exact accesses.

    Built with a per-item reader/writer index: O(n·k) in the schedule
    length [n] and conflict fan-in [k], not O(n²). *)

open Mdbs_model

type opref = {
  index : int;  (** Index of the op in its site's full local schedule. *)
  tid : Types.tid;
  action : Op.action;
}

type edge = {
  site : Types.sid;
  src : opref;  (** The earlier operation. *)
  dst : opref;  (** The later, conflicting operation of another txn. *)
}

val site_edges : Trace.t -> Trace.site_info -> edge list
(** All conflicting ordered op pairs of one site's committed projection, in
    schedule order of the later op. *)

val edges : Trace.t -> edge list
(** Union over sites. *)

val graph : Trace.t -> Mdbs_util.Digraph.t
(** The global conflict graph over committed transactions (the union of the
    per-site conflict graphs, §2.1). *)

val site_graph : Trace.t -> Trace.site_info -> Mdbs_util.Digraph.t
(** One site's conflict graph over its committed transactions. *)

val first_edge_between :
  edge list -> Types.tid -> Types.tid -> edge option
(** The first recorded edge [a -> b], if any — the concrete witness used
    when reporting a cycle [a -> b]. *)

val opref_to_json : opref -> Json.t

val pp_edge : Format.formatter -> edge -> unit
