open Mdbs_model

type race = {
  site : Types.sid;
  item : Item.t;
  first : Conflicts.opref;
  second : Conflicts.opref;
}

type kind = Body | Prep | Com

let kind_of = function
  | Op.Begin | Op.Read _ | Op.Write _ | Op.Ticket_op -> Body
  | Op.Prepare -> Prep
  | Op.Commit | Op.Abort -> Com

let detect trace =
  let sites = Array.of_list trace.Trace.sites in
  let nsites = Array.length sites in
  if nsites = 0 then []
  else begin
    let site_index = Hashtbl.create 8 in
    Array.iteri (fun k info -> Hashtbl.replace site_index info.Trace.sid k) sites;
    let site_ops =
      Array.map (fun info -> Array.of_list (Trace.committed_ops trace info)) sites
    in
    let offsets = Array.make nsites 0 in
    let total = ref 0 in
    Array.iteri
      (fun k ops ->
        offsets.(k) <- !total;
        total := !total + Array.length ops)
      site_ops;
    let n = !total in
    let node_site = Array.make n 0 in
    let node_pos = Array.make n 0 in
    let node_tid = Array.make n 0 in
    let node_action = Array.make n Op.Begin in
    Array.iteri
      (fun k ops ->
        Array.iteri
          (fun j (pos, e) ->
            let id = offsets.(k) + j in
            node_site.(id) <- k;
            node_pos.(id) <- pos;
            node_tid.(id) <- e.Schedule.tid;
            node_action.(id) <- e.Schedule.action)
          ops)
      site_ops;
    let succ = Array.make n [] in
    let indeg = Array.make n 0 in
    let add_edge a b =
      succ.(a) <- b :: succ.(a);
      indeg.(b) <- indeg.(b) + 1
    in
    (* Program order: per transaction, bodies site by site in visit order,
       then prepares, then commits (GTM1's sequential submission). *)
    let segments : (Types.tid * int * kind, int list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let txn_sites : (Types.tid, int list ref) Hashtbl.t = Hashtbl.create 64 in
    for id = 0 to n - 1 do
      let key = (node_tid.(id), node_site.(id), kind_of node_action.(id)) in
      (match Hashtbl.find_opt segments key with
      | Some ids -> ids := id :: !ids
      | None -> Hashtbl.replace segments key (ref [ id ]));
      match Hashtbl.find_opt txn_sites node_tid.(id) with
      | Some ks ->
          if not (List.mem node_site.(id) !ks) then
            ks := node_site.(id) :: !ks
      | None -> Hashtbl.replace txn_sites node_tid.(id) (ref [ node_site.(id) ])
    done;
    let ntxns = Hashtbl.length txn_sites in
    let txn_of = Array.make n 0 in
    let chain_pos = Array.make n 0 in
    let next_txn = ref 0 in
    Hashtbl.iter
      (fun tid ks ->
        let t = !next_txn in
        incr next_txn;
        let declared =
          List.filter_map
            (fun sid -> Hashtbl.find_opt site_index sid)
            (Trace.visit_order trace tid)
        in
        let observed = List.rev !ks in
        let sequence =
          List.fold_left
            (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
            [] (declared @ observed)
        in
        let segment kind k =
          match Hashtbl.find_opt segments (tid, k, kind) with
          | Some ids -> List.rev !ids
          | None -> []
        in
        let chain =
          List.concat_map (segment Body) sequence
          @ List.concat_map (segment Prep) sequence
          @ List.concat_map (segment Com) sequence
        in
        List.iteri
          (fun i id ->
            txn_of.(id) <- t;
            chain_pos.(id) <- i)
          chain;
        let rec link = function
          | a :: (b :: _ as rest) ->
              add_edge a b;
              link rest
          | _ -> ()
        in
        link chain)
      txn_sites;
    (* Commit synchronization + the conflicting pairs to examine: per-item
       reader/writer index per site. *)
    let commit_at : (Types.tid * int, int) Hashtbl.t = Hashtbl.create 64 in
    for id = 0 to n - 1 do
      if kind_of node_action.(id) = Com then
        if not (Hashtbl.mem commit_at (node_tid.(id), node_site.(id))) then
          Hashtbl.replace commit_at (node_tid.(id), node_site.(id)) id
    done;
    let pairs = ref [] in
    for k = 0 to nsites - 1 do
      let readers : (Item.t, int list) Hashtbl.t = Hashtbl.create 16 in
      let writers : (Item.t, int list) Hashtbl.t = Hashtbl.create 16 in
      let prior table item =
        match Hashtbl.find_opt table item with Some l -> l | None -> []
      in
      Array.iteri
        (fun j _ ->
          let id = offsets.(k) + j in
          match Op.action_item node_action.(id) with
          | None -> ()
          | Some item ->
              let write = Op.is_write_like node_action.(id) in
              let against =
                if write then prior readers item @ prior writers item
                else prior writers item
              in
              List.iter
                (fun a ->
                  if node_tid.(a) <> node_tid.(id) then begin
                    pairs := (item, a, id) :: !pairs;
                    match Hashtbl.find_opt commit_at (node_tid.(a), k) with
                    | Some c when node_pos.(c) < node_pos.(id) -> add_edge c id
                    | Some _ | None -> ()
                  end)
                against;
              let table = if write then writers else readers in
              Hashtbl.replace table item (id :: prior table item))
        site_ops.(k)
    done;
    (* Per-transaction vector timestamps over the happens-before DAG (Kahn
       order; leftovers from a malformed trace are folded in best-effort).
       clock.(id) is the strict-predecessor frontier: component [t] counts
       how much of transaction [t]'s program order happens before [id]. *)
    let clock = Array.init n (fun _ -> Array.make ntxns 0) in
    let settle id =
      let v = clock.(id) in
      let t = txn_of.(id) in
      let own = chain_pos.(id) + 1 in
      List.iter
        (fun b ->
          let w = clock.(b) in
          for i = 0 to ntxns - 1 do
            let vi = if i = t && own > v.(i) then own else v.(i) in
            if w.(i) < vi then w.(i) <- vi
          done)
        succ.(id)
    in
    let queue = Queue.create () in
    let remaining = Array.copy indeg in
    for id = 0 to n - 1 do
      if remaining.(id) = 0 then Queue.add id queue
    done;
    let done_count = ref 0 in
    let processed = Array.make n false in
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      processed.(id) <- true;
      incr done_count;
      settle id;
      List.iter
        (fun b ->
          remaining.(b) <- remaining.(b) - 1;
          if remaining.(b) = 0 then Queue.add b queue)
        succ.(id)
    done;
    if !done_count < n then
      for id = 0 to n - 1 do
        if not processed.(id) then settle id
      done;
    (* Race test: conflicting a < b race iff the relation does not order a
       before b — b's clock has not reached a's program-order position. *)
    let opref id =
      {
        Conflicts.index = node_pos.(id);
        tid = node_tid.(id);
        action = node_action.(id);
      }
    in
    List.rev !pairs
    |> List.filter_map (fun (item, a, b) ->
           if clock.(b).(txn_of.(a)) < chain_pos.(a) + 1 then
             Some
               {
                 site = sites.(node_site.(a)).Trace.sid;
                 item;
                 first = opref a;
                 second = opref b;
               }
           else None)
  end

let pp_race ppf r =
  Format.fprintf ppf
    "race at s%d on %a: T%d:%a[%d] unordered with T%d:%a[%d]" r.site Item.pp
    r.item r.first.Conflicts.tid Op.pp_action r.first.Conflicts.action
    r.first.Conflicts.index r.second.Conflicts.tid Op.pp_action
    r.second.Conflicts.action r.second.Conflicts.index

let race_to_json r =
  Json.Obj
    [
      ("site", Json.Int r.site);
      ("item", Json.Str (Item.to_string r.item));
      ("first", Conflicts.opref_to_json r.first);
      ("second", Conflicts.opref_to_json r.second);
    ]
