(** The trace linter: typed diagnostics over recorded executions.

    Each rule inspects the trace statically and reports structured
    diagnostics (rule id, severity, site, transactions, op indices in the
    message). Rules that need information the trace does not carry (global
    declarations, serialization events, protocols) are skipped, never
    guessed.

    Rule catalog:
    - {b MA001 ticket-order-inversion} (error): two transactions obtained
      tickets in opposite orders at two sites — the forced-conflict orders
      (§2.2) disagree, so no global serialization order can embed both.
    - {b MA002 non-two-phase-locking} (warning): at a 2PL-family site, a
      transaction's access was overtaken by a conflicting access of another
      transaction {e before} the first transaction committed — a lock was
      released early (or never held), violating (strict) two-phase
      discipline.
    - {b MA003 indirect-conflict} (warning/info): two global transactions
      with a conflict path through purely local transactions at one site
      but no direct conflict there — the §2.1 phenomenon that makes local
      schedules opaque to the GTM. Warning when the pair has no direct
      conflict at {e any} site (fully invisible), info otherwise.
    - {b MA004 unsafe-admission} (error): replaying [ser(S)], a
      serialization event of [G] at site [s_k] was admitted while some [G']
      already serialized before [G] still had an outstanding serialization
      event at [s_k] (declared, and executing later in the log) — the
      admission was unsafe at submission time (it is exactly the situation
      Scheme 3's [cond] blocks, §7). Declared events that never execute
      (the transaction died at that site) are not outstanding.
    - {b MA005 hb-race} (warning): a conflicting same-site access pair the
      reconstructed happens-before relation leaves unordered (see
      {!Race}). *)

open Mdbs_model

type severity = Error | Warning | Info

type diagnostic = {
  rule : string;  (** Rule id, e.g. ["MA001"]. *)
  name : string;  (** Rule slug, e.g. ["ticket-order-inversion"]. *)
  severity : severity;
  site : Types.sid option;
  tids : Types.tid list;
  message : string;
}

val rules : (string * string * string) list
(** [(id, name, description)] for every rule, in id order. *)

val run : Trace.t -> diagnostic list
(** All applicable rules, diagnostics grouped by rule id. *)

val errors : diagnostic list -> int
(** Number of [Error]-severity diagnostics. *)

val severity_name : severity -> string

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val diagnostic_to_json : diagnostic -> Json.t
