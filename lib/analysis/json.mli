(** Re-export of {!Mdbs_util.Json}, kept so existing [Mdbs_analysis.Json]
    references stay valid. The encoder itself lives in [mdbs_util] where the
    observability layer ({!Mdbs_obs}) can use it without depending on the
    analysis pass. *)

type t = Mdbs_util.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Pretty-printed with two-space indentation. *)

val to_string : t -> string
