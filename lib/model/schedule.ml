module Iset = Mdbs_util.Iset

type entry = { tid : Types.tid; action : Op.action }

type t = {
  site : Types.sid;
  mutable rev_entries : entry list;
  mutable count : int;
  mutable capture : bool;
}

let create site = { site; rev_entries = []; count = 0; capture = true }

let site t = t.site

let set_capture t on = t.capture <- on

let record t tid action =
  if t.capture then t.rev_entries <- { tid; action } :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries

let length t = t.count

let with_action want t =
  List.fold_left
    (fun acc e -> if e.action = want then Iset.add e.tid acc else acc)
    Iset.empty t.rev_entries

let committed t = with_action Op.Commit t

let aborted t = with_action Op.Abort t

let committed_entries t =
  let ok = committed t in
  List.filter (fun e -> Iset.mem e.tid ok) (entries t)

let pp ppf t =
  Format.fprintf ppf "@[<h>S%d:@ %a@]" t.site
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
       (fun ppf e -> Format.fprintf ppf "T%d:%a" e.tid Op.pp_action e.action))
    (entries t)
