type tid = int
type gid = int
type sid = int

type protocol_kind =
  | Two_phase_locking
  | Timestamp_ordering
  | Serialization_graph_testing
  | Optimistic
  | Conservative_2pl
  | Wait_die_2pl

let all_protocols =
  [
    Two_phase_locking;
    Timestamp_ordering;
    Serialization_graph_testing;
    Optimistic;
    Conservative_2pl;
    Wait_die_2pl;
  ]

let protocol_name = function
  | Two_phase_locking -> "2PL"
  | Timestamp_ordering -> "TO"
  | Serialization_graph_testing -> "SGT"
  | Optimistic -> "OCC"
  | Conservative_2pl -> "C2PL"
  | Wait_die_2pl -> "WD2PL"

let pp_protocol ppf p = Format.pp_print_string ppf (protocol_name p)

(* Atomic so that concurrent workload generators (the service runtime's
   client threads) can draw ids without a lock; ids stay unique and dense,
   though their assignment order across threads is nondeterministic. *)
let counter = Atomic.make 0

let fresh_tid () = Atomic.fetch_and_add counter 1 + 1

let reset_tids () = Atomic.set counter 0
