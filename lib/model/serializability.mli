(** Conflict serializability (CSR) of the global schedule.

    The paper restricts attention to conflict serializability (§2.1,
    footnote 2). Because items are site-local, the global conflict graph is
    the union over sites of each local schedule's conflict graph; the global
    schedule is serializable iff that union is acyclic. This module is the
    {e auditor} used by tests and the simulator — the GTM itself never sees
    local schedules (local autonomy), so this information is used only to
    verify, never to schedule. *)

type verdict = Serializable | Cycle of Types.tid list

val conflict_pairs : Schedule.t -> (Types.tid * Types.tid) list
(** All ordered conflicting pairs [(a, b)] of one local schedule's committed
    projection: a committed op of [a] precedes and conflicts with one of
    [b]. Pairs are listed with multiplicity (one per conflicting op pair),
    in descending order of the op-position pair — the historical contract,
    now produced by a per-item reader/writer index in O(n·k). *)

val conflict_graph : Schedule.t list -> Mdbs_util.Digraph.t
(** Conflict graph over {e committed} transactions: an edge [a -> b] when
    some committed operation of [a] precedes and conflicts with a committed
    operation of [b] in some local schedule. *)

val check : Schedule.t list -> verdict
(** Global conflict-serializability of the committed projection. *)

val is_serializable : Schedule.t list -> bool

val serialization_order : Schedule.t list -> Types.tid list option
(** A witness equivalent serial order (topological order of the conflict
    graph), if one exists. *)

val is_serializable_bruteforce : Schedule.t list -> bool
(** Independent oracle for tests: enumerates permutations of the committed
    transactions and checks conflict-order consistency directly. Exponential;
    use only with few transactions. *)

val pp_verdict : Format.formatter -> verdict -> unit
