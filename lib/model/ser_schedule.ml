module Digraph = Mdbs_util.Digraph

type t = {
  per_site : (Types.sid, Types.gid list ref) Hashtbl.t;
  mutable log : (Types.gid * Types.sid) list;  (* reversed interleave *)
}

type verdict = Serializable | Cycle of Types.gid list

let create () = { per_site = Hashtbl.create 16; log = [] }

let record t sid gid =
  t.log <- (gid, sid) :: t.log;
  match Hashtbl.find_opt t.per_site sid with
  | Some order -> order := gid :: !order
  | None -> Hashtbl.replace t.per_site sid (ref [ gid ])

let events t = List.rev t.log

let site_order t sid =
  match Hashtbl.find_opt t.per_site sid with
  | Some order -> List.rev !order
  | None -> []

let sites t =
  Hashtbl.fold (fun sid _ acc -> sid :: acc) t.per_site [] |> List.sort compare

let graph t =
  let g = Digraph.create () in
  List.iter
    (fun sid ->
      let rec chain = function
        | a :: (b :: _ as rest) ->
            Digraph.add_edge g a b;
            chain rest
        | [ only ] -> Digraph.add_node g only
        | [] -> ()
      in
      chain (site_order t sid))
    (sites t);
  g

let check t =
  match Digraph.find_cycle (graph t) with
  | None -> Serializable
  | Some cycle -> Cycle cycle

let is_serializable t = check t = Serializable

let global_order t = Digraph.topo_sort (graph t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun sid ->
      Format.fprintf ppf "s%d: %a@ " sid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " < ")
           (fun ppf gid -> Format.fprintf ppf "G%d" gid))
        (site_order t sid))
    (sites t);
  Format.fprintf ppf "@]"
