(** Shared vocabulary of the MDBS model (§2.1 of the paper).

    Transaction identifiers are drawn from one global namespace: a global
    transaction [G_i] and its subtransactions at each site share the same id,
    which is how the local DBMSs (which do not distinguish local transactions
    from global subtransactions) name them too. *)

type tid = int
(** Transaction identifier (local transactions and global transactions). *)

type gid = int
(** Identifier of a {e global} transaction. A [gid] is also a valid [tid]. *)

type sid = int
(** Site identifier: one per local DBMS, [0 .. m-1]. *)

type protocol_kind =
  | Two_phase_locking
      (** Strict two-phase locking: serialization point is any operation in
          the window [last lock acquired, first lock released]; with
          strictness the commit operation qualifies (§2.2). *)
  | Timestamp_ordering
      (** Basic timestamp ordering with timestamps assigned at begin: the
          begin operation is a serialization function (§2.2). *)
  | Serialization_graph_testing
      (** SGT certification: no natural serialization function exists; a
          forced-conflict ticket is used instead (§2.2, [GRS91]). *)
  | Optimistic
      (** Backward-validation optimistic concurrency control: transactions
          serialize in validation (commit-processing) order, so the commit
          operation is a serialization function. *)
  | Conservative_2pl
      (** Conservative (static) 2PL: all locks are predeclared and acquired
          at begin, in canonical item order — deadlock-free. The begin
          operation obtains the transaction's {e last} lock, so begin is a
          serialization function (§2.2's 2PL window starts there). *)
  | Wait_die_2pl
      (** Strict 2PL with the wait-die priority policy: a requester younger
          than a conflicting holder aborts instead of waiting, preventing
          deadlocks; serialization point is the commit, as for strict
          2PL. *)

val all_protocols : protocol_kind list

val protocol_name : protocol_kind -> string

val pp_protocol : Format.formatter -> protocol_kind -> unit

val fresh_tid : unit -> tid
(** Global monotonic id supply. Thread- and domain-safe (atomic): the
    service runtime's concurrent clients may generate transactions in
    parallel without coordination. *)

val reset_tids : unit -> unit
(** Reset the id supply (tests and independent simulation runs). Do not
    call while other domains are drawing ids. *)
