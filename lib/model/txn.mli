(** Transaction descriptors and scripts.

    A {e script} is the program of a transaction: its actions in program
    order, each tagged with the site it executes at. Local transactions have
    single-site scripts and are submitted directly to their site (bypassing
    the GTM, as the paper's pre-existing local applications do). Global
    transactions are executed by the GTM, strictly sequentially: the next
    step is submitted only after the previous step's acknowledgement
    (§2.3). *)

type step = { site : Types.sid; action : Op.action }

type kind =
  | Local of Types.sid
  | Global of Types.sid list  (** Sites, in first-access order. *)

type t = { id : Types.tid; kind : kind; script : step list }

val local : id:Types.tid -> site:Types.sid -> Op.action list -> t
(** [local ~id ~site actions] wraps [actions] with [Begin]/[Commit] if the
    list does not already begin/end with them. *)

val global : id:Types.gid -> (Types.sid * Op.action list) list -> t
(** [global ~id per_site] builds a global transaction whose subtransaction at
    each listed site performs the given data actions. The script brackets
    each site's actions with [Begin] and [Commit]; data actions of different
    sites are kept contiguous per site, sites in list order, with all commits
    at the end (commit only after every site's work succeeded). *)

val with_id : t -> Types.tid -> t
(** The same script under a fresh transaction id — how a client reissues an
    aborted transaction. The retry is a {e new} transaction to every site
    and to the certifier (the aborted attempt stays in the trace under its
    old id); reusing the old id would make [ser(S)] visit a site twice for
    one id, which the analyses reject. *)

val sites : t -> Types.sid list
(** Sites the transaction touches, in first-access order. *)

val accesses_at : t -> Types.sid -> (Item.t * bool) list
(** The data items the transaction touches at the given site, each with a
    write-like flag (strongest access wins; at most one entry per item).
    Used to predeclare lock sets for conservative-2PL sites. *)

val is_global : t -> bool

val well_formed : t -> (unit, string) result
(** Checks: at each site, exactly one [Begin] preceding all that site's
    actions and exactly one [Commit] following them; no [Abort] in scripts;
    [Local] kind touches exactly its one site. *)

val pp : Format.formatter -> t -> unit
