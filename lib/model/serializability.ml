module Digraph = Mdbs_util.Digraph
module Iset = Mdbs_util.Iset

type verdict = Serializable | Cycle of Types.tid list

(* All ordered conflicting pairs (a, b): a's op precedes and conflicts with
   b's op in the committed projection of [schedule].

   A per-item reader/writer index replaces the quadratic all-pairs scan: a
   read conflicts with the item's prior writes, a write-like op with its
   prior reads and writes — O(n·k) for k conflicting predecessors per op.
   The final sort keeps the result identical (order and multiplicity) to
   the historical nested-loop enumeration, which listed pairs in
   descending (i, j) position order. *)
let conflict_pairs schedule =
  let entries = Array.of_list (Schedule.committed_entries schedule) in
  let n = Array.length entries in
  let readers : (Item.t, int list) Hashtbl.t = Hashtbl.create 16 in
  let writers : (Item.t, int list) Hashtbl.t = Hashtbl.create 16 in
  let prior tbl item =
    match Hashtbl.find_opt tbl item with Some l -> l | None -> []
  in
  let collected = ref [] in
  for j = 0 to n - 1 do
    let b = entries.(j) in
    match Op.action_item b.Schedule.action with
    | None -> ()
    | Some item ->
        let write = Op.is_write_like b.Schedule.action in
        let against =
          if write then prior readers item @ prior writers item
          else prior writers item
        in
        List.iter
          (fun i ->
            let a = entries.(i) in
            if a.Schedule.tid <> b.Schedule.tid then
              collected := (i, j, (a.Schedule.tid, b.Schedule.tid)) :: !collected)
          against;
        let tbl = if write then writers else readers in
        Hashtbl.replace tbl item (j :: prior tbl item)
  done;
  List.sort (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2)) !collected
  |> List.fold_left (fun acc (_, _, pair) -> pair :: acc) []

let conflict_graph schedules =
  let g = Digraph.create () in
  List.iter
    (fun schedule ->
      Iset.iter (fun tid -> Digraph.add_node g tid) (Schedule.committed schedule);
      List.iter (fun (a, b) -> Digraph.add_edge g a b) (conflict_pairs schedule))
    schedules;
  g

let check schedules =
  let g = conflict_graph schedules in
  match Digraph.find_cycle g with
  | None -> Serializable
  | Some cycle -> Cycle cycle

let is_serializable schedules = check schedules = Serializable

let serialization_order schedules = Digraph.topo_sort (conflict_graph schedules)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let is_serializable_bruteforce schedules =
  let committed =
    List.fold_left
      (fun acc s -> Iset.union acc (Schedule.committed s))
      Iset.empty schedules
  in
  let txns = Iset.to_list committed in
  if List.length txns > 8 then
    invalid_arg "is_serializable_bruteforce: too many transactions";
  let pairs = List.concat_map conflict_pairs schedules in
  let consistent order =
    let position = Hashtbl.create 16 in
    List.iteri (fun i tid -> Hashtbl.replace position tid i) order;
    List.for_all
      (fun (a, b) -> Hashtbl.find position a < Hashtbl.find position b)
      pairs
  in
  List.exists consistent (permutations txns)

let pp_verdict ppf = function
  | Serializable -> Format.pp_print_string ppf "serializable"
  | Cycle cycle ->
      Format.fprintf ppf "NOT serializable; cycle: %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           (fun ppf tid -> Format.fprintf ppf "T%d" tid))
        cycle
