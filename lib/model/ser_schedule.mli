(** The derived schedule [ser(S)] (§2.3).

    [ser(S)] consists of the serialization operations [ser_k(G_i)] of global
    transactions; two operations conflict iff they executed at the same site.
    Theorem 2: if each local schedule is serializable and [ser(S)] is
    (conflict-)serializable, then the global schedule is serializable.

    This module records, per site, the order in which the serialization
    events of global transactions executed, builds the serialization graph of
    [ser(S)] (edges between same-site consecutive transactions, oriented by
    execution order) and checks it for acyclicity. *)

type t

val create : unit -> t

val record : t -> Types.sid -> Types.gid -> unit
(** Record that [G_i]'s serialization event at site [sid] has executed, after
    all previously recorded events at that site. *)

val site_order : t -> Types.sid -> Types.gid list
(** Serialization-event order at one site. *)

val events : t -> (Types.gid * Types.sid) list
(** The full interleaved log of serialization events, in execution order —
    the raw material a static analysis pass replays. *)

val sites : t -> Types.sid list

val graph : t -> Mdbs_util.Digraph.t
(** The serialization graph of [ser(S)]: edge [G_i -> G_j] when [G_i]'s
    event precedes [G_j]'s at some common site. *)

type verdict = Serializable | Cycle of Types.gid list

val check : t -> verdict

val is_serializable : t -> bool

val global_order : t -> Types.gid list option
(** A total order on global transactions compatible with every site's
    serialization-event order — the witness demanded by Theorem 1. *)

val pp : Format.formatter -> t -> unit
