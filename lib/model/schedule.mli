(** Recorded local schedules (§2.1).

    A local schedule [S_k] is the total order of operations the local DBMS at
    site [s_k] actually executed. Sites record entries as they execute
    operations; the union of local schedules (with their per-site total
    orders) is the global schedule [S] — data items are site-local, so all
    conflicts are within one site's order. *)

type entry = { tid : Types.tid; action : Op.action }

type t
(** The mutable schedule of one site. *)

val create : Types.sid -> t

val site : t -> Types.sid

val record : t -> Types.tid -> Op.action -> unit
(** Append an executed operation. *)

val set_capture : t -> bool -> unit
(** Entry retention (default on). With capture off, {!record} still counts
    operations but keeps no entries — soak runs bound their memory by the
    streaming certifier's window instead of the full audit record. *)

val entries : t -> entry list
(** Entries in execution order. *)

val length : t -> int

val committed : t -> Mdbs_util.Iset.t
(** Transaction ids with a recorded [Commit]. *)

val aborted : t -> Mdbs_util.Iset.t
(** Transaction ids with a recorded [Abort]. *)

val committed_entries : t -> entry list
(** Entries restricted to committed transactions, in execution order —
    the committed projection used for serializability analysis. *)

val pp : Format.formatter -> t -> unit
