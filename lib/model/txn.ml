type step = { site : Types.sid; action : Op.action }

type kind = Local of Types.sid | Global of Types.sid list

type t = { id : Types.tid; kind : kind; script : step list }

let local ~id ~site actions =
  let actions =
    match actions with
    | Op.Begin :: _ -> actions
    | _ -> Op.Begin :: actions
  in
  let actions =
    match List.rev actions with
    | Op.Commit :: _ -> actions
    | _ -> actions @ [ Op.Commit ]
  in
  { id; kind = Local site; script = List.map (fun action -> { site; action }) actions }

let global ~id per_site =
  let sites = List.map fst per_site in
  let body =
    List.concat_map
      (fun (site, actions) ->
        { site; action = Op.Begin }
        :: List.map (fun action -> { site; action }) actions)
      per_site
  in
  let commits = List.map (fun site -> { site; action = Op.Commit }) sites in
  { id; kind = Global sites; script = body @ commits }

let with_id t id = { t with id }

let sites t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun { site; _ } ->
      if Hashtbl.mem seen site then None
      else begin
        Hashtbl.replace seen site ();
        Some site
      end)
    t.script

let accesses_at t site =
  let strongest = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun step ->
      if step.site = site then
        match Op.action_item step.action with
        | None -> ()
        | Some item ->
            let write = Op.is_write_like step.action in
            (match Hashtbl.find_opt strongest item with
            | None ->
                order := item :: !order;
                Hashtbl.replace strongest item write
            | Some existing -> Hashtbl.replace strongest item (existing || write)))
    t.script;
  List.rev_map (fun item -> (item, Hashtbl.find strongest item)) !order

let is_global t = match t.kind with Global _ -> true | Local _ -> false

let well_formed t =
  let ( let* ) = Result.bind in
  let per_site = Hashtbl.create 8 in
  List.iter
    (fun { site; action } ->
      let existing = try Hashtbl.find per_site site with Not_found -> [] in
      Hashtbl.replace per_site site (action :: existing))
    t.script;
  let check_site site =
    match List.rev (try Hashtbl.find per_site site with Not_found -> []) with
    | [] -> Error (Printf.sprintf "T%d: no actions at site %d" t.id site)
    | Op.Begin :: rest -> (
        match List.rev rest with
        | Op.Commit :: middle ->
            if
              List.exists
                (function Op.Begin | Op.Commit | Op.Abort -> true | _ -> false)
                middle
            then Error (Printf.sprintf "T%d: stray control action at site %d" t.id site)
            else Ok ()
        | _ -> Error (Printf.sprintf "T%d: site %d does not end with commit" t.id site))
    | _ -> Error (Printf.sprintf "T%d: site %d does not start with begin" t.id site)
  in
  let* () =
    match t.kind with
    | Local site ->
        if List.for_all (fun s -> s.site = site) t.script then Ok ()
        else Error (Printf.sprintf "T%d: local transaction touches other sites" t.id)
    | Global declared ->
        let actual = sites t in
        if List.sort compare declared = List.sort compare actual then Ok ()
        else Error (Printf.sprintf "T%d: declared sites differ from script sites" t.id)
  in
  List.fold_left
    (fun acc site -> Result.bind acc (fun () -> check_site site))
    (Ok ()) (sites t)

let pp ppf t =
  let kind = match t.kind with Local s -> Printf.sprintf "local@s%d" s | Global _ -> "global" in
  Format.fprintf ppf "@[<h>T%d(%s):@ %a@]" t.id kind
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
       (fun ppf { site; action } -> Format.fprintf ppf "s%d:%a" site Op.pp_action action))
    t.script
