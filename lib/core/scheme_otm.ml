open Mdbs_model
module Digraph = Mdbs_util.Digraph

type state = {
  graph : Digraph.t; (* serialization graph of ser(S) over tracked txns *)
  chains : (Types.sid, Types.gid list ref) Hashtbl.t;
      (* per-site execution order of serialization operations, alive txns only *)
  finned : (Types.gid, unit) Hashtbl.t;
  aborted : (Types.gid, unit) Hashtbl.t;
  last_submitted : (Types.sid, Types.gid) Hashtbl.t;
  acked : (Types.gid * Types.sid, unit) Hashtbl.t;
  mutable steps : int;
}

let chain state site =
  match Hashtbl.find_opt state.chains site with
  | Some c -> c
  | None ->
      let c = ref [] in
      Hashtbl.replace state.chains site c;
      c

(* Remove a transaction from every per-site chain, splicing an explicit
   edge between its neighbours so the site's total order is preserved
   transitively. *)
let remove_from_chains state gid =
  Hashtbl.iter
    (fun _site chain ->
      let rec splice = function
        | prev :: g :: next :: rest when g = gid ->
            Digraph.add_edge state.graph prev next;
            prev :: next :: rest
        | [ prev; g ] when g = gid -> [ prev ]
        | g :: rest when g = gid -> rest
        | x :: rest -> x :: splice rest
        | [] -> []
      in
      chain := splice !chain)
    state.chains

let prune state =
  let continue_pruning = ref true in
  while !continue_pruning do
    let prunable =
      List.filter
        (fun n ->
          Hashtbl.mem state.finned n
          && Mdbs_util.Iset.is_empty (Digraph.pred state.graph n))
        (Digraph.nodes state.graph)
    in
    if prunable = [] then continue_pruning := false
    else
      List.iter
        (fun n ->
          state.steps <- state.steps + 1;
          Digraph.remove_node state.graph n;
          remove_from_chains state n;
          Hashtbl.remove state.finned n)
        prunable
  done

let make () =
  let state =
    {
      graph = Digraph.create ();
      chains = Hashtbl.create 16;
      finned = Hashtbl.create 64;
      aborted = Hashtbl.create 64;
      last_submitted = Hashtbl.create 16;
      acked = Hashtbl.create 64;
      steps = 0;
    }
  in
  let bump n = state.steps <- state.steps + n in
  let cond op =
    bump 1;
    match op with
    | Queue_op.Init _ | Queue_op.Ack _ | Queue_op.Fin _ -> true
    | Queue_op.Ser (_, site) -> (
        match Hashtbl.find_opt state.last_submitted site with
        | None -> true
        | Some last -> Hashtbl.mem state.acked (last, site))
  in
  let act op =
    match op with
    | Queue_op.Init { gid; _ } ->
        bump 1;
        Digraph.add_node state.graph gid;
        []
    | Queue_op.Ser (gid, site) ->
        bump 1;
        if Hashtbl.mem state.aborted gid then
          (* Dead transaction draining through: let the caller fake it. *)
          [ Scheme.Submit_ser (gid, site) ]
        else begin
          let c = chain state site in
          let tail = match List.rev !c with t :: _ -> Some t | [] -> None in
          let closes_cycle =
            match tail with
            | Some t when t <> gid ->
                bump (Digraph.node_count state.graph);
                Digraph.has_path state.graph gid t
            | Some _ | None -> false
          in
          if closes_cycle then begin
            (* Optimism failed: abort instead of delaying. *)
            Hashtbl.replace state.aborted gid ();
            Digraph.remove_node state.graph gid;
            remove_from_chains state gid;
            [ Scheme.Abort_global gid ]
          end
          else begin
            (match tail with
            | Some t when t <> gid -> Digraph.add_edge state.graph t gid
            | Some _ | None -> ());
            c := !c @ [ gid ];
            Hashtbl.replace state.last_submitted site gid;
            [ Scheme.Submit_ser (gid, site) ]
          end
        end
    | Queue_op.Ack (gid, site) ->
        bump 1;
        Hashtbl.replace state.acked (gid, site) ();
        [ Scheme.Forward_ack (gid, site) ]
    | Queue_op.Fin gid ->
        bump 1;
        if Hashtbl.mem state.aborted gid then Hashtbl.remove state.aborted gid
        else Hashtbl.replace state.finned gid ();
        prune state;
        []
  in
  let wakeups = function
    | Queue_op.Ack (_, site) -> [ Scheme.Wake_ser_at site ]
    | Queue_op.Init _ | Queue_op.Ser _ | Queue_op.Fin _ -> []
  in
  let explain op =
    match op with
    | Queue_op.Ser (_, site) -> (
        match Hashtbl.find_opt state.last_submitted site with
        | Some last when not (Hashtbl.mem state.acked (last, site)) ->
            Printf.sprintf "previous ser(G%d) at site %d not yet acked" last site
        | Some _ | None -> "ready")
    | Queue_op.Init _ | Queue_op.Ack _ | Queue_op.Fin _ -> "ready"
  in
  let describe () =
    Printf.sprintf "otm: %d tracked / %d edges" (Digraph.node_count state.graph)
      (Digraph.edge_count state.graph)
  in
  {
    Scheme.name = "otm";
    cond;
    act;
    wakeups;
    steps = (fun () -> state.steps);
    describe;
    explain;
  }
