(** The assembled global transaction manager: GTM1 + GTM2 (engine + scheme)
    + servers, wired to a set of local DBMSs (Figure 1).

    This is the synchronous front door of the library: admit global
    transactions, submit local transactions directly to their sites (they
    bypass the GTM, as the paper's pre-existing local applications do), and
    {!pump} until quiescence. The discrete-event simulator builds on the
    same pieces with latencies and workload generation; examples and tests
    use this module directly.

    Abort handling: the GTM2 schemes are conservative (they never abort),
    but a local DBMS may still reject a global subtransaction (deadlock
    victim, late timestamp, failed validation). The glue then aborts the
    transaction at every site where it is active and {e fakes} the
    acknowledgements of its remaining serialization operations so the
    scheme's data structures drain; cross-site deadlocks (invisible to every
    single site) are broken by aborting the youngest blocked global
    transaction after a quiescent round. *)

open Mdbs_model

type t

type status = Active | Committed | Aborted of string

val create :
  ?obs:Mdbs_obs.Obs.t -> ?atomic_commit:bool -> scheme:Scheme.t ->
  sites:Mdbs_site.Local_dbms.t list -> unit -> t
(** [~atomic_commit:true] runs global transactions under two-phase commit:
    a prepare round precedes the commits, so a validation failure at any
    site aborts the transaction everywhere {e before} any site committed —
    closing the atomicity gap the paper leaves as future work. Default
    false (the paper's model).

    [?obs] (default {!Mdbs_obs.Obs.disabled}) is handed to the engine; see
    {!Engine.create}. {!recover} inherits it, closing the crashed engine's
    open wait spans first. *)

val engine : t -> Engine.t

val site : t -> Types.sid -> Mdbs_site.Local_dbms.t

val sites : t -> Mdbs_site.Local_dbms.t list

val submit_global : t -> Txn.t -> unit
(** Admit a global transaction (enqueues its [init]); progress happens in
    {!pump}. *)

val submit_local : t -> Txn.t -> unit
(** Start a local transaction directly at its site; it advances during
    {!pump} if blocked. *)

val pump : t -> unit
(** Run everything to quiescence: engine, dispatch, completions, forced
    aborts of cross-site deadlock victims. *)

val run_global : t -> Txn.t -> status
(** [submit_global] + [pump] + status. *)

val run_local : t -> Txn.t -> status

val status : t -> Types.tid -> status
(** Status of any submitted transaction. *)

val ser_schedule : t -> Ser_schedule.t
(** The recorded [ser(S)] (audit data, §2.3). *)

val schedules : t -> Schedule.t list
(** All local schedules (audit data). *)

val audit : t -> Serializability.verdict
(** Global conflict-serializability of everything committed so far. *)

val forced_aborts : t -> int
(** Cross-site deadlock victims killed by the glue's timeout rule. *)

val gtm_log : t -> Gtm_log.t
(** The GTM's durable log: admissions, dispatch/ack progress, 2PC
    decisions. Survives a GTM crash (see {!recover}). *)

val recover : old:t -> scheme:Scheme.t -> t
(** Crash the GTM of [old] and return its restarted replacement: a fresh
    engine around [scheme], a fresh GTM1, the same sites, and the survived
    durable log. Every transaction the log shows admitted-but-unfinished is
    resolved by presumed abort: a logged [Commit] decision is completed at
    every site where the subtransaction is still live (including in-doubt
    2PC participants); anything else — including transactions whose
    decision was never logged — is aborted at all such sites. Blocked local
    transactions are resumed by a final {!pump}. *)
