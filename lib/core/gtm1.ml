open Mdbs_model

type step = { site : Types.sid; action : Op.action; via_gtm2 : bool }

type progress =
  | Dispatch_direct of step
  | Dispatch_ser of Types.sid
  | In_flight
  | Finished

type txn_state = {
  steps : step array;
  declarations : (Types.sid * (Item.t * bool) list) list;
  mutable pc : int;
  mutable in_flight : bool;
  mutable dead : bool;
  mutable begun : Types.sid list; (* begun, not yet terminated, at these sites *)
}

type t = { txns : (Types.gid, txn_state) Hashtbl.t }

let create () = { txns = Hashtbl.create 32 }

(* Annotate the script with GTM2 routing and inject ticket operations for
   sites whose serialization point is the ticket. Under atomic commitment a
   Prepare step per site precedes the commits; since prepares can still be
   refused (OCC validation) and commits after unanimous prepares cannot,
   this yields all-or-nothing global transactions. *)
let build_steps txn ~ser_point_of ~atomic =
  let annotate { Txn.site; action } =
    let point = ser_point_of site in
    let via =
      match (action, point) with
      | Op.Begin, Ser_fun.At_begin -> true
      | Op.Commit, Ser_fun.At_commit -> true
      | Op.Prepare, Ser_fun.At_prepare -> true
      | _ -> false
    in
    let injected =
      match (action, point) with
      | Op.Begin, Ser_fun.At_ticket ->
          [ { site; action = Op.Ticket_op; via_gtm2 = true } ]
      | _ -> []
    in
    { site; action; via_gtm2 = via } :: injected
  in
  let body, commits =
    List.partition (fun s -> s.Txn.action <> Op.Commit) txn.Txn.script
  in
  let prepares =
    if atomic then
      List.map (fun s -> { Txn.site = s.Txn.site; action = Op.Prepare }) commits
    else []
  in
  Array.of_list (List.concat_map annotate (body @ prepares @ commits))

let admit t txn ?(atomic = false) ~ser_point_of () =
  (match txn.Txn.kind with
  | Txn.Global _ -> ()
  | Txn.Local _ -> invalid_arg "Gtm1.admit: local transaction");
  (match Txn.well_formed txn with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Gtm1.admit: " ^ msg));
  let steps = build_steps txn ~ser_point_of ~atomic in
  let declarations =
    List.map (fun site -> (site, Txn.accesses_at txn site)) (Txn.sites txn)
  in
  Hashtbl.replace t.txns txn.Txn.id
    { steps; declarations; pc = 0; in_flight = false; dead = false; begun = [] };
  { Queue_op.gid = txn.Txn.id; ser_sites = Txn.sites txn }

let state t gid =
  match Hashtbl.find_opt t.txns gid with
  | Some st -> st
  | None -> invalid_arg "Gtm1: unknown transaction"

(* When dead, skip forward over direct steps: only serialization operations
   still flow (faked downstream) so GTM2's structures drain. *)
let skip_dead st =
  if st.dead then
    while st.pc < Array.length st.steps && not st.steps.(st.pc).via_gtm2 do
      st.pc <- st.pc + 1
    done

let next t gid =
  let st = state t gid in
  if st.in_flight then In_flight
  else begin
    skip_dead st;
    if st.pc >= Array.length st.steps then Finished
    else
      let step = st.steps.(st.pc) in
      if step.via_gtm2 then Dispatch_ser step.site else Dispatch_direct step
  end

let note_dispatched t gid =
  let st = state t gid in
  if st.in_flight then invalid_arg "Gtm1.note_dispatched: already in flight";
  st.in_flight <- true

let on_ack t gid =
  let st = state t gid in
  if not st.in_flight then invalid_arg "Gtm1.on_ack: nothing in flight";
  (if st.pc < Array.length st.steps then
     let step = st.steps.(st.pc) in
     if not st.dead then
       match step.action with
       | Op.Begin -> st.begun <- step.site :: st.begun
       | Op.Commit -> st.begun <- List.filter (fun s -> s <> step.site) st.begun
       | Op.Read _ | Op.Write _ | Op.Ticket_op | Op.Prepare | Op.Abort -> ());
  st.pc <- st.pc + 1;
  st.in_flight <- false

let current_step t gid =
  let st = state t gid in
  if st.pc < Array.length st.steps then Some st.steps.(st.pc) else None

let mark_dead t gid =
  let st = state t gid in
  st.dead <- true

let is_dead t gid = (state t gid).dead

let pc t gid = (state t gid).pc

let begun_sites t gid = (state t gid).begun

let note_site_terminated t gid site =
  let st = state t gid in
  st.begun <- List.filter (fun s -> s <> site) st.begun

let active t = Hashtbl.fold (fun gid _ acc -> gid :: acc) t.txns [] |> List.sort compare

let declaration_for t gid site =
  match List.assoc_opt site (state t gid).declarations with
  | Some accesses -> accesses
  | None -> []

let is_known t gid = Hashtbl.mem t.txns gid

let finish t gid = Hashtbl.remove t.txns gid
