(** GTM1: the global-transaction sequencer (Figure 1, §2.3).

    GTM1 executes each global transaction strictly sequentially: the next
    operation is submitted only after the previous one's acknowledgement.
    It knows each site's serialization function and routes exactly the
    serialization operations — [Begin] for timestamp-ordering sites,
    [Commit] for 2PL/OCC sites, an injected [Ticket_op] for SGT sites —
    through GTM2; all other operations go directly to the sites. It brackets
    each transaction with [init_i] (before any operation) and [fin_i] (after
    every serialization acknowledgement).

    GTM1 is a passive state machine here: the GTM glue ({!Gtm}) or the
    simulator asks {!next} what to do and reports completions back. *)

open Mdbs_model

type t

type step = { site : Types.sid; action : Op.action; via_gtm2 : bool }

type progress =
  | Dispatch_direct of step  (** Submit this operation straight to its site. *)
  | Dispatch_ser of Types.sid
      (** Enqueue [Ser (gid, site)] into GTM2's QUEUE. *)
  | In_flight  (** Waiting for the previous operation's acknowledgement. *)
  | Finished
      (** Script complete (or abandoned): enqueue [fin] if not already done. *)

val create : unit -> t

val admit :
  t -> Txn.t -> ?atomic:bool -> ser_point_of:(Types.sid -> Ser_fun.point) ->
  unit -> Queue_op.info
(** Register a global transaction; returns the [init] payload the caller
    must enqueue into GTM2 before anything else. With [~atomic:true] a
    [Prepare] step per site is inserted before the commits (two-phase
    commit). Raises [Invalid_argument] on a non-global or malformed
    transaction. *)

val next : t -> Types.gid -> progress
(** What GTM1 wants to do now for this transaction. Calling [next] does not
    change state; the caller confirms dispatch with {!note_dispatched}. *)

val note_dispatched : t -> Types.gid -> unit
(** The operation returned by [next] has been handed off (to the site or to
    GTM2); the transaction is in flight until {!on_ack}. *)

val on_ack : t -> Types.gid -> unit
(** The in-flight operation completed; advance the program counter. *)

val current_step : t -> Types.gid -> step option
(** The step at the program counter (the in-flight one, if any). *)

val mark_dead : t -> Types.gid -> unit
(** The transaction aborted at some site. Remaining direct operations are
    skipped; remaining serialization operations are still routed through
    GTM2 (and faked by the caller) so the scheme's data structures drain
    cleanly. *)

val is_dead : t -> Types.gid -> bool

val pc : t -> Types.gid -> int
(** The program counter: index of the current (possibly in-flight) step.
    Used as the per-transaction operation id for idempotent delivery — a
    retried or duplicated message for step [pc] is recognisable because the
    counter only advances on acknowledgement. *)

val begun_sites : t -> Types.gid -> Types.sid list
(** Sites where the transaction's [Begin] has been acknowledged but no
    [Commit]/[Abort] has completed — the sites to roll back on death. *)

val note_site_terminated : t -> Types.gid -> Types.sid -> unit
(** The transaction committed or aborted at that site. *)

val active : t -> Types.gid list
(** Admitted transactions that have not yet been finished and reaped. *)

val declaration_for : t -> Types.gid -> Types.sid -> (Item.t * bool) list
(** The transaction's access set at a site (item, write-like), used to
    predeclare locks at conservative-2PL sites before dispatching the
    begin. *)

val is_known : t -> Types.gid -> bool
(** Is the transaction still tracked (admitted, not yet finished)? *)

val finish : t -> Types.gid -> unit
(** Forget the transaction (after [fin] was enqueued). *)
