module Dllist = Mdbs_util.Dllist
module Obs = Mdbs_obs.Obs
module Sink = Mdbs_obs.Sink
module Metrics = Mdbs_obs.Metrics
module Profile = Mdbs_obs.Profile

(* WAIT is bucketed so that a wakeup directive touches only the operations it
   may have enabled — matching the paper's cost model, where the cost of an
   act includes determining exactly the waiting operations whose condition it
   made true (not a scan of all of WAIT). *)
type t = {
  scheme : Scheme.t;
  queue : Queue_op.t Queue.t;
  ser_wait : (int, Queue_op.t Dllist.t) Hashtbl.t; (* site -> waiting Ser ops *)
  fin_wait : Queue_op.t Dllist.t;
  other_wait : Queue_op.t Dllist.t;
  mutable wait_count : int;
  mutable wait_insertions : int;
  mutable ser_wait_insertions : int;
  mutable processed : int;
  mutable engine_steps : int;
  obs : Obs.t;
  (* Parked op -> (wait-span id, park sim-time); entries live exactly as
     long as the op sits in WAIT. *)
  wait_info : (Queue_op.t, int * float) Hashtbl.t;
  wait_hists : (int, Mdbs_util.Stats.histogram) Hashtbl.t; (* per site *)
  fin_wait_hist : Mdbs_util.Stats.histogram;
  wait_depth : Metrics.gauge;
}

let create ?(obs = Obs.disabled) scheme =
  {
    scheme;
    queue = Queue.create ();
    ser_wait = Hashtbl.create 16;
    fin_wait = Dllist.create ();
    other_wait = Dllist.create ();
    wait_count = 0;
    wait_insertions = 0;
    ser_wait_insertions = 0;
    processed = 0;
    engine_steps = 0;
    obs;
    wait_info = Hashtbl.create 32;
    wait_hists = Hashtbl.create 16;
    fin_wait_hist =
      Metrics.histogram obs.Obs.metrics
        ~labels:[ ("scheme", scheme.Scheme.name) ]
        "gtm2_fin_wait_ms";
    wait_depth =
      Metrics.gauge obs.Obs.metrics
        ~labels:[ ("scheme", scheme.Scheme.name) ]
        "gtm2_wait_depth_max";
  }

let scheme t = t.scheme

let obs t = t.obs

let enqueue t op = Queue.add op t.queue

let enqueue_all t ops = List.iter (fun op -> Queue.add op t.queue) ops

let ser_bucket t site =
  match Hashtbl.find_opt t.ser_wait site with
  | Some bucket -> bucket
  | None ->
      let bucket = Dllist.create () in
      Hashtbl.replace t.ser_wait site bucket;
      bucket

let wait_hist t site =
  match Hashtbl.find_opt t.wait_hists site with
  | Some h -> h
  | None ->
      let h =
        Metrics.histogram t.obs.Obs.metrics
          ~labels:
            [
              ("scheme", t.scheme.Scheme.name); ("site", string_of_int site);
            ]
          "gtm2_queue_wait_ms"
      in
      Hashtbl.replace t.wait_hists site h;
      h

(* Record why the scheme delayed this operation: a "gtm2.wait" span on the
   transaction's track carrying the scheme's explanation, plus the park
   timestamp for the queue-wait histograms. Nothing runs when the bundle is
   {!Obs.disabled}. *)
let note_parked t op =
  if t.obs.Obs.live then begin
    let span =
      if Sink.enabled t.obs.Obs.sink then
        Sink.begin_span t.obs.Obs.sink
          ~track:(Sink.txn_track t.obs.Obs.sink (Queue_op.gid op))
          ~attrs:
            [
              ("op", Queue_op.to_string op);
              ("reason", t.scheme.Scheme.explain op);
            ]
          "gtm2.wait"
      else 0
    in
    Hashtbl.replace t.wait_info op (span, Obs.now t.obs)
  end

let note_unparked t op =
  if t.obs.Obs.live then
    match Hashtbl.find_opt t.wait_info op with
    | None -> ()
    | Some (span, parked_at) ->
        Hashtbl.remove t.wait_info op;
        let waited = Obs.now t.obs -. parked_at in
        (match op with
        | Queue_op.Ser (_, site) -> Metrics.observe (wait_hist t site) waited
        | Queue_op.Fin _ -> Metrics.observe t.fin_wait_hist waited
        | Queue_op.Init _ | Queue_op.Ack _ -> ());
        Sink.end_span t.obs.Obs.sink
          ~attrs:[ ("waited_ms", Printf.sprintf "%.1f" waited) ]
          span

(* End every open wait span (GTM crash teardown: the parked operations are
   lost with the engine, their spans must not dangle). *)
let close_open_spans t ~reason =
  Hashtbl.iter
    (fun _ (span, _) ->
      Sink.end_span t.obs.Obs.sink ~attrs:[ ("outcome", reason) ] span)
    t.wait_info;
  Hashtbl.reset t.wait_info

let park t op =
  (match op with
  | Queue_op.Ser (_, site) ->
      ignore (Dllist.push_back (ser_bucket t site) op);
      t.ser_wait_insertions <- t.ser_wait_insertions + 1
  | Queue_op.Fin _ -> ignore (Dllist.push_back t.fin_wait op)
  | Queue_op.Init _ | Queue_op.Ack _ -> ignore (Dllist.push_back t.other_wait op));
  t.wait_count <- t.wait_count + 1;
  t.wait_insertions <- t.wait_insertions + 1;
  Metrics.set_max t.wait_depth (float_of_int t.wait_count);
  note_parked t op

let timed_cond t op =
  if Profile.enabled t.obs.Obs.profile then begin
    let t0 = Profile.start t.obs.Obs.profile in
    let r = t.scheme.Scheme.cond op in
    Profile.stop t.obs.Obs.profile "gtm2.cond" t0;
    r
  end
  else t.scheme.Scheme.cond op

let timed_act t op =
  if Profile.enabled t.obs.Obs.profile then begin
    let t0 = Profile.start t.obs.Obs.profile in
    let r = t.scheme.Scheme.act op in
    Profile.stop t.obs.Obs.profile "gtm2.act" t0;
    r
  end
  else t.scheme.Scheme.act op

(* Re-check one bucket: find the first member whose condition holds, process
   it, and rescan (its act may enable or disable other members — cond must
   be re-evaluated after every act, exactly as in Figure 3). *)
let rec drain_bucket t bucket effects directives =
  let rec scan = function
    | [] -> ()
    | node :: rest ->
        t.engine_steps <- t.engine_steps + 1;
        let op = Dllist.value node in
        if timed_cond t op then begin
          Dllist.remove bucket node;
          t.wait_count <- t.wait_count - 1;
          note_unparked t op;
          let emitted = timed_act t op in
          effects := List.rev_append emitted !effects;
          t.processed <- t.processed + 1;
          directives := t.scheme.Scheme.wakeups op @ !directives;
          drain_bucket t bucket effects directives
        end
        else scan rest
  in
  scan (Dllist.nodes bucket)

let buckets_for t = function
  | Scheme.Wake_ser_at site -> [ ser_bucket t site ]
  | Scheme.Wake_fins -> [ t.fin_wait ]
  | Scheme.Wake_all ->
      Hashtbl.fold (fun _ b acc -> b :: acc) t.ser_wait [ t.fin_wait; t.other_wait ]

let process_directives t initial effects =
  let directives = ref initial in
  while !directives <> [] do
    match !directives with
    | [] -> ()
    | directive :: rest ->
        directives := rest;
        List.iter
          (fun bucket -> drain_bucket t bucket effects directives)
          (buckets_for t directive)
  done

let run t =
  let effects = ref [] in
  while not (Queue.is_empty t.queue) do
    let op = Queue.pop t.queue in
    t.engine_steps <- t.engine_steps + 1;
    if timed_cond t op then begin
      (* Never delayed: a zero-wait observation keeps the queue-wait
         distribution honest about the ops that sailed through. *)
      (match op with
      | Queue_op.Ser (_, site) when t.obs.Obs.live ->
          Metrics.observe (wait_hist t site) 0.0
      | _ -> ());
      let emitted = timed_act t op in
      effects := List.rev_append emitted !effects;
      t.processed <- t.processed + 1;
      process_directives t (t.scheme.Scheme.wakeups op) effects
    end
    else park t op
  done;
  List.rev !effects

let wait_set t =
  let buckets =
    Hashtbl.fold (fun _ b acc -> b :: acc) t.ser_wait [ t.fin_wait; t.other_wait ]
  in
  List.concat_map Dllist.to_list buckets

let wait_size t = t.wait_count

let total_wait_insertions t = t.wait_insertions

let ser_wait_insertions t = t.ser_wait_insertions

let total_processed t = t.processed

let engine_steps t = t.engine_steps

let total_steps t = t.engine_steps + t.scheme.Scheme.steps ()

let idle t = Queue.is_empty t.queue
