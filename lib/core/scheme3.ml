open Mdbs_model
module Iset = Mdbs_util.Iset

type state = {
  ser_bef : (Types.gid, Iset.t ref) Hashtbl.t;
  set_k : (Types.sid, Iset.t ref) Hashtbl.t;
  last_k : (Types.sid, Types.gid) Hashtbl.t;
  acked : (Types.gid * Types.sid, unit) Hashtbl.t;
  sites_of : (Types.gid, Types.sid list) Hashtbl.t;
  mutable steps : int;
}

let make () =
  let state =
    {
      ser_bef = Hashtbl.create 64;
      set_k = Hashtbl.create 16;
      last_k = Hashtbl.create 16;
      acked = Hashtbl.create 64;
      sites_of = Hashtbl.create 64;
      steps = 0;
    }
  in
  let bump n = state.steps <- state.steps + n in
  let ser_bef gid =
    match Hashtbl.find_opt state.ser_bef gid with
    | Some s -> s
    | None ->
        let s = ref Iset.empty in
        Hashtbl.replace state.ser_bef gid s;
        s
  in
  let set_k site =
    match Hashtbl.find_opt state.set_k site with
    | Some s -> s
    | None ->
        let s = ref Iset.empty in
        Hashtbl.replace state.set_k site s;
        s
  in
  let cond op =
    bump 1;
    match op with
    | Queue_op.Init _ | Queue_op.Ack _ -> true
    | Queue_op.Ser (gid, site) ->
        let pending = !(set_k site) in
        let predecessors = !(ser_bef gid) in
        bump (min (Iset.cardinal pending) (Iset.cardinal predecessors));
        let blocked_by_predecessor = Iset.intersects predecessors pending in
        let previous_acked =
          match Hashtbl.find_opt state.last_k site with
          | None -> true
          | Some last -> Hashtbl.mem state.acked (last, site)
        in
        (not blocked_by_predecessor) && previous_acked
    | Queue_op.Fin gid -> Iset.is_empty !(ser_bef gid)
  in
  let act op =
    match op with
    | Queue_op.Init { gid; ser_sites } ->
        Hashtbl.replace state.sites_of gid ser_sites;
        let before = ser_bef gid in
        List.iter
          (fun site ->
            let sk = set_k site in
            sk := Iset.add gid !sk;
            bump 1;
            match Hashtbl.find_opt state.last_k site with
            | None -> ()
            | Some last ->
                let inherited = Iset.add last !(ser_bef last) in
                bump (Iset.cardinal inherited);
                before := Iset.union !before inherited)
          ser_sites;
        []
    | Queue_op.Ser (gid, site) ->
        let sk = set_k site in
        sk := Iset.remove gid !sk;
        Hashtbl.replace state.last_k site gid;
        let set1 = Iset.add gid !(ser_bef gid) in
        (* Everyone with a pending serialization operation at this site is
           now serialized after gid; so is anyone already serialized after a
           member of set_k (transitive closure). *)
        let pending = !sk in
        Hashtbl.iter
          (fun other before ->
            bump 1;
            if Iset.mem other pending || Iset.intersects !before pending then begin
              bump (Iset.cardinal set1);
              before := Iset.union !before set1
            end)
          state.ser_bef;
        [ Scheme.Submit_ser (gid, site) ]
    | Queue_op.Ack (gid, site) ->
        bump 1;
        Hashtbl.replace state.acked (gid, site) ();
        [ Scheme.Forward_ack (gid, site) ]
    | Queue_op.Fin gid ->
        Hashtbl.iter
          (fun _ before ->
            bump 1;
            before := Iset.remove gid !before)
          state.ser_bef;
        (match Hashtbl.find_opt state.sites_of gid with
        | Some sites ->
            List.iter
              (fun site ->
                bump 1;
                (match Hashtbl.find_opt state.last_k site with
                | Some last when last = gid -> Hashtbl.remove state.last_k site
                | Some _ | None -> ());
                Hashtbl.remove state.acked (gid, site))
              sites
        | None -> ());
        Hashtbl.remove state.ser_bef gid;
        Hashtbl.remove state.sites_of gid;
        []
  in
  let wakeups = function
    | Queue_op.Ack (_, site) -> [ Scheme.Wake_ser_at site ]
    | Queue_op.Fin _ -> [ Scheme.Wake_fins ]
    | Queue_op.Init _ | Queue_op.Ser _ -> []
  in
  let explain op =
    match op with
    | Queue_op.Ser (gid, site) ->
        let pending = !(set_k site) in
        let predecessors = !(ser_bef gid) in
        let blockers = Iset.inter predecessors pending in
        if not (Iset.is_empty blockers) then
          Printf.sprintf
            "serialized-before predecessors {%s} still pending at site %d"
            (String.concat ","
               (List.map
                  (fun g -> Printf.sprintf "G%d" g)
                  (Iset.elements blockers)))
            site
        else (
          match Hashtbl.find_opt state.last_k site with
          | Some last when not (Hashtbl.mem state.acked (last, site)) ->
              Printf.sprintf "previous ser(G%d) at site %d not yet acked" last
                site
          | Some _ | None -> "ready")
    | Queue_op.Fin gid ->
        let before = !(ser_bef gid) in
        if Iset.is_empty before then "ready"
        else
          Printf.sprintf "fin blocked: serialized after live {%s}"
            (String.concat ","
               (List.map
                  (fun g -> Printf.sprintf "G%d" g)
                  (Iset.elements before)))
    | Queue_op.Init _ | Queue_op.Ack _ -> "ready"
  in
  let describe () =
    Printf.sprintf "scheme3: %d active transactions" (Hashtbl.length state.ser_bef)
  in
  {
    Scheme.name = "scheme3";
    cond;
    act;
    wakeups;
    steps = (fun () -> state.steps);
    describe;
    explain;
  }
