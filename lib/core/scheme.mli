(** The conservative concurrency-control scheme interface (Figure 2).

    A scheme is a triple: private data structures DS, a predicate
    [cond(o_j)] over DS, and an action [act(o_j)] that updates DS and emits
    effects. Schemes never abort transactions — they only delay operations
    (conservativeness, §3). The engine (Figure 3) owns QUEUE and WAIT and
    consults [cond]/[act].

    Implementations: {!Scheme0} (per-site FIFO), {!Scheme1} (transaction-site
    graph), {!Scheme2} (TSG with dependencies), {!Scheme3} (the O-scheme that
    permits all serializable schedules), and {!Scheme_nocontrol} (an unsafe
    baseline for demonstrating why control is needed).

    {b Sharing discipline (OCaml 5).} A scheme value is {e self-contained}:
    all of its mutable data structures are captured in the closures of one
    instance and no implementation touches global mutable state, so distinct
    instances never interfere and an instance may be created on one domain
    and used on another. A single instance is {e not} internally
    synchronized — the parallel service runtime ({!Mdbs_svc.Gtm_sched})
    serializes every [cond]/[act]/[wakeups] call behind one mutex, exactly
    as the DES serializes them behind its event loop. [explain] is
    side-effect-free and is the one entry point other threads may call (under
    the same mutex) for stall attribution while the scheduler is running. *)

open Mdbs_model

type effect_ =
  | Submit_ser of Types.gid * Types.sid
      (** Hand [ser_k(G_i)] to the site's server for execution. *)
  | Forward_ack of Types.gid * Types.sid
      (** Pass the acknowledgement on to GTM1. *)
  | Abort_global of Types.gid
      (** Non-conservative schemes only ({!Scheme_otm}): the global
          transaction must abort (its serialization operation was {e not}
          submitted). The paper's Schemes 0-3 never emit this — they are
          conservative by design (§3). *)

type wakeup =
  | Wake_ser_at of Types.sid
      (** Re-check waiting [Ser] operations of this site. *)
  | Wake_fins  (** Re-check waiting [Fin] operations. *)
  | Wake_all  (** Re-check everything (fallback). *)

type t = {
  name : string;
  cond : Queue_op.t -> bool;
      (** Must be side-effect-free apart from step accounting. *)
  act : Queue_op.t -> effect_ list;
      (** Pre-condition: [cond] holds. Updates DS; returns effects in
          order. *)
  wakeups : Queue_op.t -> wakeup list;
      (** Which waiting operations [act] on this operation may have enabled.
          This is the paper's "steps required to determine the operations in
          WAIT for which cond holds due to the execution of act(o_j)": the
          engine re-checks only the designated buckets. Must be {e complete}
          (never miss an enabled operation); precision affects only cost. *)
  steps : unit -> int;
      (** Abstract steps consumed so far by [cond]/[act] — the quantity the
          paper's complexity theorems bound. *)
  describe : unit -> string;  (** One-line dump of DS, for debugging. *)
  explain : Queue_op.t -> string;
      (** Human-readable reason why [cond op] currently fails (which DS
          predicate blocks the operation), for wait-span attribution in the
          observability layer. Side-effect-free, no step accounting; the
          result is unspecified when [cond op] holds. *)
}

val pp_effect : Format.formatter -> effect_ -> unit
