open Mdbs_model
module Local_dbms = Mdbs_site.Local_dbms
module Cc_types = Mdbs_lcc.Cc_types

type status = Active | Committed | Aborted of string

type t = {
  engine : Engine.t;
  gtm1 : Gtm1.t;
  atomic_commit : bool;
  site_tbl : (Types.sid, Local_dbms.t) Hashtbl.t;
  ser_log : Ser_schedule.t;
  pending_ser : (Types.sid * Types.gid, unit) Hashtbl.t;
      (* serialization operations submitted to a site and blocked there *)
  local_cont : (Types.tid, Types.sid * Op.action list) Hashtbl.t;
      (* blocked local transactions: site and actions still to run *)
  statuses : (Types.tid, status) Hashtbl.t;
  fin_enqueued : (Types.gid, unit) Hashtbl.t;
  death_reason : (Types.gid, string) Hashtbl.t;
  mutable forced_aborts : int;
  gtm_log : Gtm_log.t; (* stable storage: survives a GTM crash *)
  decided : (Types.gid, unit) Hashtbl.t;
}

let create ?(obs = Mdbs_obs.Obs.disabled) ?(atomic_commit = false) ~scheme
    ~sites () =
  let site_tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace site_tbl (Local_dbms.site_id s) s) sites;
  {
    engine = Engine.create ~obs scheme;
    gtm1 = Gtm1.create ();
    atomic_commit;
    site_tbl;
    ser_log = Ser_schedule.create ();
    pending_ser = Hashtbl.create 16;
    local_cont = Hashtbl.create 16;
    statuses = Hashtbl.create 64;
    fin_enqueued = Hashtbl.create 64;
    death_reason = Hashtbl.create 16;
    forced_aborts = 0;
    gtm_log = Gtm_log.create ();
    decided = Hashtbl.create 16;
  }

let engine t = t.engine

let gtm_log t = t.gtm_log

let site t sid =
  match Hashtbl.find_opt t.site_tbl sid with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Gtm.site: unknown site %d" sid)

let sites t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.site_tbl []
  |> List.sort (fun a b -> compare (Local_dbms.site_id a) (Local_dbms.site_id b))

let ser_schedule t = t.ser_log

let schedules t = List.map Local_dbms.schedule (sites t)

let audit t = Serializability.check (schedules t)

let forced_aborts t = t.forced_aborts

let status t tid =
  match Hashtbl.find_opt t.statuses tid with Some s -> s | None -> Active

(* --- global transaction plumbing ------------------------------------- *)

(* Force-append a decision record at most once per transaction. *)
let log_decided t gid d =
  if not (Hashtbl.mem t.decided gid) then begin
    Hashtbl.replace t.decided gid ();
    Gtm_log.append t.gtm_log (Gtm_log.Decided (gid, d))
  end

(* Acknowledge the in-flight step, logging the advance. *)
let gtm1_ack t gid =
  Gtm_log.append t.gtm_log (Gtm_log.Acked (gid, Gtm1.pc t.gtm1 gid));
  Gtm1.on_ack t.gtm1 gid

let mark_global_dead t gid reason ~aborting_site =
  if not (Gtm1.is_dead t.gtm1 gid) then begin
    Gtm1.mark_dead t.gtm1 gid;
    log_decided t gid Gtm_log.Abort;
    Hashtbl.replace t.death_reason gid reason;
    (match aborting_site with
    | Some s -> Gtm1.note_site_terminated t.gtm1 gid s
    | None -> ());
    (* Roll back at every other site where the subtransaction is active. *)
    List.iter
      (fun s ->
        ignore (Local_dbms.submit (site t s) gid Op.Abort);
        Gtm1.note_site_terminated t.gtm1 gid s)
      (Gtm1.begun_sites t.gtm1 gid)
  end

let submit_global t txn =
  let ser_point_of sid =
    let dbms = site t sid in
    if t.atomic_commit then
      Ser_fun.for_protocol_atomic (Local_dbms.protocol_kind dbms)
    else Local_dbms.serialization_point dbms
  in
  let info = Gtm1.admit t.gtm1 txn ~atomic:t.atomic_commit ~ser_point_of () in
  Gtm_log.append t.gtm_log (Gtm_log.Admitted (txn, t.atomic_commit));
  Hashtbl.replace t.statuses txn.Txn.id Active;
  Engine.enqueue t.engine (Queue_op.Init info)

(* Predeclare the subtransaction's lock set when the site needs it
   (conservative 2PL), just before its begin is submitted. *)
let declare_if_needed t gid sid action =
  if action = Op.Begin then begin
    let dbms = site t sid in
    if Local_dbms.needs_declarations dbms then
      let accesses =
        List.map
          (fun (item, write) ->
            (item, if write then Cc_types.Write_mode else Cc_types.Read_mode))
          (Gtm1.declaration_for t.gtm1 gid sid)
      in
      Local_dbms.declare dbms gid accesses
  end

(* Execute the Submit_ser effect: run the serialization operation at its
   site (or fake it for a dead transaction). *)
let handle_submit_ser t gid sid progressed =
  let fake_ack () = Engine.enqueue t.engine (Queue_op.Ack (gid, sid)) in
  if Gtm1.is_dead t.gtm1 gid then fake_ack ()
  else begin
    let action =
      match Gtm1.current_step t.gtm1 gid with
      | Some step when step.Gtm1.site = sid && step.Gtm1.via_gtm2 -> step.Gtm1.action
      | Some _ | None -> invalid_arg "Gtm: Submit_ser does not match current step"
    in
    (* Under 2PC, reaching a commit step means every prepare was
       acknowledged: the global verdict is now Commit. Log the decision
       before the first commit leaves the GTM (the 2PC decision record). *)
    if action = Op.Commit then log_decided t gid Gtm_log.Commit;
    declare_if_needed t gid sid action;
    match Local_dbms.submit (site t sid) gid action with
    | Local_dbms.Executed _ ->
        Ser_schedule.record t.ser_log sid gid;
        fake_ack ()
    | Local_dbms.Waiting -> Hashtbl.replace t.pending_ser (sid, gid) ()
    | Local_dbms.Aborted reason ->
        mark_global_dead t gid reason ~aborting_site:(Some sid);
        fake_ack ()
  end;
  progressed := true

(* Drive one global transaction as far as it goes without an ack. *)
let rec drive_global t gid progressed =
  match Gtm1.next t.gtm1 gid with
  | Gtm1.In_flight -> ()
  | Gtm1.Finished ->
      if not (Hashtbl.mem t.fin_enqueued gid) then begin
        Hashtbl.replace t.fin_enqueued gid ();
        Engine.enqueue t.engine (Queue_op.Fin gid);
        let final =
          if Gtm1.is_dead t.gtm1 gid then
            Aborted
              (match Hashtbl.find_opt t.death_reason gid with
              | Some r -> r
              | None -> "aborted")
          else Committed
        in
        if final = Committed then log_decided t gid Gtm_log.Commit;
        Gtm_log.append t.gtm_log (Gtm_log.Finished gid);
        Hashtbl.replace t.statuses gid final;
        Gtm1.finish t.gtm1 gid;
        progressed := true
      end
  | Gtm1.Dispatch_ser sid ->
      Gtm_log.append t.gtm_log (Gtm_log.Dispatched (gid, Gtm1.pc t.gtm1 gid));
      Gtm1.note_dispatched t.gtm1 gid;
      Engine.enqueue t.engine (Queue_op.Ser (gid, sid));
      progressed := true
  | Gtm1.Dispatch_direct step ->
      Gtm_log.append t.gtm_log (Gtm_log.Dispatched (gid, Gtm1.pc t.gtm1 gid));
      (if step.Gtm1.action = Op.Commit && not (Gtm1.is_dead t.gtm1 gid) then
         log_decided t gid Gtm_log.Commit);
      Gtm1.note_dispatched t.gtm1 gid;
      progressed := true;
      declare_if_needed t gid step.Gtm1.site step.Gtm1.action;
      (match Local_dbms.submit (site t step.Gtm1.site) gid step.Gtm1.action with
      | Local_dbms.Executed _ ->
          gtm1_ack t gid;
          drive_global t gid progressed
      | Local_dbms.Waiting -> ()
      | Local_dbms.Aborted reason ->
          mark_global_dead t gid reason ~aborting_site:(Some step.Gtm1.site);
          gtm1_ack t gid;
          drive_global t gid progressed)

(* --- local transactions ---------------------------------------------- *)

let rec run_local_actions t tid sid actions progressed =
  match actions with
  | [] -> Hashtbl.replace t.statuses tid Committed
  | action :: rest -> (
      match Local_dbms.submit (site t sid) tid action with
      | Local_dbms.Executed _ ->
          progressed := true;
          run_local_actions t tid sid rest progressed
      | Local_dbms.Waiting -> Hashtbl.replace t.local_cont tid (sid, rest)
      | Local_dbms.Aborted reason -> Hashtbl.replace t.statuses tid (Aborted reason))

let submit_local t txn =
  let sid =
    match txn.Txn.kind with
    | Txn.Local sid -> sid
    | Txn.Global _ -> invalid_arg "Gtm.submit_local: global transaction"
  in
  Hashtbl.replace t.statuses txn.Txn.id Active;
  let dbms = site t sid in
  if Local_dbms.needs_declarations dbms then
    Local_dbms.declare dbms txn.Txn.id
      (List.map
         (fun (item, write) ->
           (item, if write then Cc_types.Write_mode else Cc_types.Read_mode))
         (Txn.accesses_at txn sid));
  let actions = List.map (fun s -> s.Txn.action) txn.Txn.script in
  run_local_actions t txn.Txn.id sid actions (ref false)

(* --- completions ------------------------------------------------------ *)

let handle_completion t sid (completion : Local_dbms.completion) progressed =
  let tid = completion.Local_dbms.tid in
  progressed := true;
  if Hashtbl.mem t.pending_ser (sid, tid) then begin
    Hashtbl.remove t.pending_ser (sid, tid);
    Ser_schedule.record t.ser_log sid tid;
    Engine.enqueue t.engine (Queue_op.Ack (tid, sid))
  end
  else
    match Hashtbl.find_opt t.local_cont tid with
    | Some (cont_sid, rest) ->
        Hashtbl.remove t.local_cont tid;
        run_local_actions t tid cont_sid rest progressed
    | None ->
        (* A direct operation of a global transaction was unblocked. *)
        if Gtm1.is_known t.gtm1 tid then gtm1_ack t tid

let drain_completions t progressed =
  List.iter
    (fun s ->
      List.iter
        (fun c -> handle_completion t (Local_dbms.site_id s) c progressed)
        (Local_dbms.drain_completions s))
    (sites t)

(* --- forced aborts (cross-site deadlocks) ----------------------------- *)

(* A quiescent round with transactions still blocked at sites means a
   cross-site deadlock (each site's waits-for graph is acyclic, the cycle
   spans sites). Kill the youngest blocked global transaction. *)
let force_abort_one t =
  let blocked_globals =
    List.filter
      (fun gid ->
        Gtm1.next t.gtm1 gid = Gtm1.In_flight
        && (not (Gtm1.is_dead t.gtm1 gid))
        &&
        match Gtm1.current_step t.gtm1 gid with
        | Some step ->
            let sid = step.Gtm1.site in
            Hashtbl.mem t.pending_ser (sid, gid)
            || Local_dbms.has_pending (site t sid) gid
        | None -> false)
      (Gtm1.active t.gtm1)
  in
  match List.rev blocked_globals with
  | [] -> false
  | victim :: _ ->
      t.forced_aborts <- t.forced_aborts + 1;
      let step =
        match Gtm1.current_step t.gtm1 victim with
        | Some s -> s
        | None -> assert false
      in
      let sid = step.Gtm1.site in
      ignore (Local_dbms.submit (site t sid) victim Op.Abort);
      mark_global_dead t victim "global-deadlock" ~aborting_site:(Some sid);
      if Hashtbl.mem t.pending_ser (sid, victim) then begin
        Hashtbl.remove t.pending_ser (sid, victim);
        Engine.enqueue t.engine (Queue_op.Ack (victim, sid))
      end
      else gtm1_ack t victim;
      true

(* --- the pump ---------------------------------------------------------- *)

let pump t =
  let quiescent = ref false in
  while not !quiescent do
    let progressed = ref false in
    let effects = Engine.run t.engine in
    if effects <> [] then progressed := true;
    List.iter
      (fun effect ->
        match effect with
        | Scheme.Submit_ser (gid, sid) -> handle_submit_ser t gid sid progressed
        | Scheme.Forward_ack (gid, _) -> gtm1_ack t gid
        | Scheme.Abort_global gid ->
            (* A non-conservative scheme refused the serialization
               operation: the transaction dies without it ever reaching its
               site. Complete the in-flight step and take the dead path. *)
            mark_global_dead t gid "gtm2-abort" ~aborting_site:None;
            if Gtm1.is_known t.gtm1 gid then gtm1_ack t gid;
            progressed := true)
      effects;
    drain_completions t progressed;
    List.iter (fun gid -> drive_global t gid progressed) (Gtm1.active t.gtm1);
    if not !progressed then
      if Engine.idle t.engine && force_abort_one t then ()
      else quiescent := true
  done

(* --- GTM crash and recovery ------------------------------------------- *)

(* A GTM crash loses every volatile structure: GTM1 program counters, the
   engine's QUEUE/WAIT, the scheme's data structures, the in-flight
   messages. What survives: the durable {!Gtm_log}, and the sites
   themselves (untouched — a GTM failure is not a site failure). Recovery
   is presumed abort: every unfinished transaction with a logged Commit
   decision is completed (Commit delivered to every site where its
   subtransaction is still live, including in-doubt participants of a
   concurrent site crash); every other unfinished transaction is aborted at
   every such site. Undecided transactions cannot have committed anywhere
   under 2PC — the decision record precedes the first commit message — so
   aborting them everywhere preserves atomicity.

   The resolution operations bypass the (fresh) GTM2: its new scheme
   instance has no pending structures to consult, and the relative
   serialization order of the resolved transactions was fixed before the
   crash (every serialization point except a 2PL commit precedes prepare;
   commit-point sites order the surviving commits by the locks the
   transactions still hold). *)
let recover ~old ~scheme =
  Engine.close_open_spans old.engine ~reason:"gtm-crash";
  let t =
    {
      engine = Engine.create ~obs:(Engine.obs old.engine) scheme;
      gtm1 = Gtm1.create ();
      atomic_commit = old.atomic_commit;
      site_tbl = old.site_tbl;
      ser_log = old.ser_log;
      pending_ser = Hashtbl.create 16;
      local_cont = old.local_cont;
      statuses = old.statuses;
      fin_enqueued = old.fin_enqueued;
      death_reason = old.death_reason;
      forced_aborts = old.forced_aborts;
      gtm_log = old.gtm_log;
      decided = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (entry : Gtm_log.entry) ->
      let gid = entry.Gtm_log.txn.Txn.id in
      let live_sites =
        List.filter
          (fun sid -> Local_dbms.is_active (site t sid) gid)
          (Txn.sites entry.Gtm_log.txn)
      in
      (match entry.Gtm_log.decision with
      | Some Gtm_log.Commit ->
          List.iter
            (fun sid -> ignore (Local_dbms.submit (site t sid) gid Op.Commit))
            live_sites;
          Hashtbl.replace t.statuses gid Committed
      | Some Gtm_log.Abort | None ->
          if entry.Gtm_log.decision = None then
            Gtm_log.append t.gtm_log (Gtm_log.Decided (gid, Gtm_log.Abort));
          List.iter
            (fun sid -> ignore (Local_dbms.submit (site t sid) gid Op.Abort))
            live_sites;
          Hashtbl.replace t.statuses gid
            (Aborted
               (match Hashtbl.find_opt t.death_reason gid with
               | Some r -> r
               | None -> "gtm-crash")));
      Gtm_log.append t.gtm_log (Gtm_log.Finished gid))
    (Gtm_log.analyze t.gtm_log);
  (* Resolution released locks; blocked local transactions may now run. *)
  pump t;
  t

let run_global t txn =
  submit_global t txn;
  pump t;
  status t txn.Txn.id

let run_local t txn =
  submit_local t txn;
  pump t;
  status t txn.Txn.id
