open Mdbs_model
module Bigraph = Mdbs_util.Bigraph
module Dllist = Mdbs_util.Dllist

type state = {
  tsg : Bigraph.t;
  insert_q : (Types.sid, Types.gid Dllist.t) Hashtbl.t;
  delete_q : (Types.sid, Types.gid Dllist.t) Hashtbl.t;
  insert_nodes : (Types.gid * Types.sid, Types.gid Dllist.node) Hashtbl.t;
  marked : (Types.gid * Types.sid, unit) Hashtbl.t;
  outstanding : (Types.sid, Types.gid) Hashtbl.t;
      (* site -> transaction whose ser op executed but is not yet acked *)
  sites_of : (Types.gid, Types.sid list) Hashtbl.t;
  mutable steps : int;
}

let queue table site =
  match Hashtbl.find_opt table site with
  | Some q -> q
  | None ->
      let q = Dllist.create () in
      Hashtbl.replace table site q;
      q

type mark_policy = Mark_on_cycle | Mark_always

let make ?(mark_policy = Mark_on_cycle) () =
  let state =
    {
      tsg = Bigraph.create ();
      insert_q = Hashtbl.create 16;
      delete_q = Hashtbl.create 16;
      insert_nodes = Hashtbl.create 64;
      marked = Hashtbl.create 64;
      outstanding = Hashtbl.create 16;
      sites_of = Hashtbl.create 64;
      steps = 0;
    }
  in
  let bump n = state.steps <- state.steps + n in
  let cond op =
    bump 1;
    match op with
    | Queue_op.Init _ | Queue_op.Ack _ -> true
    | Queue_op.Ser (gid, site) ->
        let no_outstanding = not (Hashtbl.mem state.outstanding site) in
        let head_ok =
          if Hashtbl.mem state.marked (gid, site) then
            match Hashtbl.find_opt state.insert_nodes (gid, site) with
            | Some node -> Dllist.is_front (queue state.insert_q site) node
            | None -> false
          else true
        in
        no_outstanding && head_ok
    | Queue_op.Fin gid ->
        let sites =
          match Hashtbl.find_opt state.sites_of gid with Some s -> s | None -> []
        in
        List.for_all
          (fun site ->
            bump 1;
            Dllist.peek_front (queue state.delete_q site) = Some gid)
          sites
  in
  let act op =
    match op with
    | Queue_op.Init { gid; ser_sites } ->
        Hashtbl.replace state.sites_of gid ser_sites;
        List.iter
          (fun site ->
            bump 1;
            Bigraph.add_edge state.tsg ~left:gid ~right:site)
          ser_sites;
        List.iter
          (fun site ->
            let node = Dllist.push_back (queue state.insert_q site) gid in
            Hashtbl.replace state.insert_nodes (gid, site) node;
            let mark =
              match mark_policy with
              | Mark_always ->
                  bump 1;
                  true
              | Mark_on_cycle ->
                  let on_cycle, visits =
                    Bigraph.edge_on_cycle state.tsg ~left:gid ~right:site
                  in
                  bump visits;
                  on_cycle
            in
            if mark then Hashtbl.replace state.marked (gid, site) ())
          ser_sites;
        []
    | Queue_op.Ser (gid, site) ->
        bump 1;
        Hashtbl.replace state.outstanding site gid;
        [ Scheme.Submit_ser (gid, site) ]
    | Queue_op.Ack (gid, site) ->
        bump 1;
        (match Hashtbl.find_opt state.outstanding site with
        | Some g when g = gid -> Hashtbl.remove state.outstanding site
        | Some _ | None -> invalid_arg "Scheme1: unexpected ack");
        (match Hashtbl.find_opt state.insert_nodes (gid, site) with
        | Some node ->
            Dllist.remove (queue state.insert_q site) node;
            Hashtbl.remove state.insert_nodes (gid, site)
        | None -> invalid_arg "Scheme1: ack for unknown ser operation");
        Hashtbl.remove state.marked (gid, site);
        ignore (Dllist.push_back (queue state.delete_q site) gid);
        [ Scheme.Forward_ack (gid, site) ]
    | Queue_op.Fin gid ->
        let sites =
          match Hashtbl.find_opt state.sites_of gid with Some s -> s | None -> []
        in
        List.iter
          (fun site ->
            bump 1;
            match Dllist.pop_front (queue state.delete_q site) with
            | Some front when front = gid -> ()
            | Some _ | None -> invalid_arg "Scheme1: fin without delete-queue head")
          sites;
        Bigraph.remove_left state.tsg gid;
        Hashtbl.remove state.sites_of gid;
        []
  in
  let wakeups = function
    | Queue_op.Ack (_, site) -> [ Scheme.Wake_ser_at site; Scheme.Wake_fins ]
    | Queue_op.Fin _ -> [ Scheme.Wake_fins ]
    | Queue_op.Init _ | Queue_op.Ser _ -> []
  in
  let explain op =
    match op with
    | Queue_op.Ser (gid, site) -> (
        match Hashtbl.find_opt state.outstanding site with
        | Some other ->
            Printf.sprintf "site %d has outstanding ser(G%d) awaiting ack" site
              other
        | None ->
            if Hashtbl.mem state.marked (gid, site) then
              match
                Dllist.peek_front (queue state.insert_q site)
              with
              | Some front when front <> gid ->
                  Printf.sprintf
                    "marked (edge on TSG cycle): behind G%d in site-%d \
                     insert queue"
                    front site
              | Some _ | None -> "marked (edge on TSG cycle)"
            else "ready")
    | Queue_op.Fin gid -> (
        let sites =
          match Hashtbl.find_opt state.sites_of gid with Some s -> s | None -> []
        in
        let blocking =
          List.find_opt
            (fun site ->
              Dllist.peek_front (queue state.delete_q site) <> Some gid)
            sites
        in
        match blocking with
        | Some site -> (
            match Dllist.peek_front (queue state.delete_q site) with
            | Some front ->
                Printf.sprintf "fin blocked: G%d ahead in site-%d delete queue"
                  front site
            | None ->
                Printf.sprintf "fin blocked: ser(G%d) not yet acked at site %d"
                  gid site)
        | None -> "ready")
    | Queue_op.Init _ | Queue_op.Ack _ -> "ready"
  in
  let describe () =
    Printf.sprintf "scheme1: tsg %d txns / %d edges"
      (List.length (Bigraph.lefts state.tsg))
      (Bigraph.edge_count state.tsg)
  in
  {
    Scheme.name = "scheme1";
    cond;
    act;
    wakeups;
    steps = (fun () -> state.steps);
    describe;
    explain;
  }
