open Mdbs_model

type decision = Commit | Abort

type record =
  | Admitted of Txn.t * bool
  | Dispatched of Types.gid * int
  | Acked of Types.gid * int
  | Decided of Types.gid * decision
  | Finished of Types.gid

type t = { mutable records : record list (* newest first *) }

let create () = { records = [] }
let append t r = t.records <- r :: t.records
let records t = List.rev t.records
let length t = List.length t.records

type entry = {
  txn : Txn.t;
  atomic : bool;
  dispatched : int;
  acked : int;
  decision : decision option;
}

let analyze t =
  (* One replay pass, oldest record first; admission order is preserved by
     accumulating entries in reverse and flipping once at the end. *)
  let entries : (Types.gid, entry) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let update gid f =
    match Hashtbl.find_opt entries gid with
    | None -> () (* records for a finished (removed) or unknown txn *)
    | Some e -> Hashtbl.replace entries gid (f e)
  in
  List.iter
    (fun r ->
      match r with
      | Admitted (txn, atomic) ->
          Hashtbl.replace entries txn.Txn.id
            { txn; atomic; dispatched = 0; acked = 0; decision = None };
          order := txn.Txn.id :: !order
      | Dispatched (gid, pc) ->
          update gid (fun e -> { e with dispatched = max e.dispatched (pc + 1) })
      | Acked (gid, pc) -> update gid (fun e -> { e with acked = max e.acked (pc + 1) })
      | Decided (gid, d) -> update gid (fun e -> { e with decision = Some d })
      | Finished gid ->
          Hashtbl.remove entries gid;
          order := List.filter (fun g -> g <> gid) !order)
    (records t);
  List.rev_map (fun gid -> Hashtbl.find entries gid) !order

let decision_of t gid =
  (* Newest-first scan finds the decision without a full replay. *)
  let rec scan = function
    | [] -> None
    | Decided (g, d) :: _ when g = gid -> Some d
    | _ :: rest -> scan rest
  in
  scan t.records

let pp_decision ppf = function
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"

let pp_record ppf = function
  | Admitted (txn, atomic) ->
      Format.fprintf ppf "admitted g%d%s" txn.Txn.id
        (if atomic then " (2pc)" else "")
  | Dispatched (gid, pc) -> Format.fprintf ppf "dispatched g%d#%d" gid pc
  | Acked (gid, pc) -> Format.fprintf ppf "acked g%d#%d" gid pc
  | Decided (gid, d) -> Format.fprintf ppf "decided g%d %a" gid pp_decision d
  | Finished gid -> Format.fprintf ppf "finished g%d" gid
