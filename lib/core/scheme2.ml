open Mdbs_model
module Iset = Mdbs_util.Iset

type state = {
  tsgd : Tsgd.t;
  executed : (Types.gid * Types.sid, unit) Hashtbl.t;
  acked : (Types.gid * Types.sid, unit) Hashtbl.t;
  mutable steps : int;
}

let make_with_tsgd () =
  let state =
    {
      tsgd = Tsgd.create ();
      executed = Hashtbl.create 64;
      acked = Hashtbl.create 64;
      steps = 0;
    }
  in
  let bump n = state.steps <- state.steps + n in
  let cond op =
    bump 1;
    match op with
    | Queue_op.Init _ | Queue_op.Ack _ -> true
    | Queue_op.Ser (gid, site) ->
        Iset.for_all
          (fun source ->
            bump 1;
            Hashtbl.mem state.acked (source, site))
          (Tsgd.deps_into state.tsgd gid site)
    | Queue_op.Fin gid ->
        bump 1;
        not (Tsgd.has_incoming_dep state.tsgd gid)
  in
  let act op =
    match op with
    | Queue_op.Init { gid; ser_sites } ->
        Tsgd.add_txn state.tsgd gid ser_sites;
        List.iter
          (fun site ->
            Iset.iter
              (fun other ->
                bump 1;
                if other <> gid && Hashtbl.mem state.executed (other, site) then
                  Tsgd.add_dep state.tsgd other site gid)
              (Tsgd.txns_at state.tsgd site))
          ser_sites;
        let delta, ec_steps = Eliminate_cycles.run state.tsgd gid in
        bump ec_steps;
        List.iter (fun (source, site) -> Tsgd.add_dep state.tsgd source site gid) delta;
        []
    | Queue_op.Ser (gid, site) ->
        bump 1;
        Hashtbl.replace state.executed (gid, site) ();
        Iset.iter
          (fun other ->
            bump 1;
            if other <> gid && not (Hashtbl.mem state.executed (other, site)) then
              Tsgd.add_dep state.tsgd gid site other)
          (Tsgd.txns_at state.tsgd site);
        [ Scheme.Submit_ser (gid, site) ]
    | Queue_op.Ack (gid, site) ->
        bump 1;
        Hashtbl.replace state.acked (gid, site) ();
        [ Scheme.Forward_ack (gid, site) ]
    | Queue_op.Fin gid ->
        Iset.iter
          (fun site ->
            bump 1;
            Hashtbl.remove state.executed (gid, site);
            Hashtbl.remove state.acked (gid, site))
          (Tsgd.sites_of state.tsgd gid);
        Tsgd.remove_txn state.tsgd gid;
        []
  in
  let wakeups = function
    | Queue_op.Ack (_, site) -> [ Scheme.Wake_ser_at site ]
    | Queue_op.Fin _ -> [ Scheme.Wake_fins ]
    | Queue_op.Init _ | Queue_op.Ser _ -> []
  in
  let explain op =
    match op with
    | Queue_op.Ser (gid, site) ->
        let unacked =
          Iset.filter
            (fun source -> not (Hashtbl.mem state.acked (source, site)))
            (Tsgd.deps_into state.tsgd gid site)
        in
        if Iset.is_empty unacked then "ready"
        else
          Printf.sprintf "waiting for ack of dependencies {%s} at site %d"
            (String.concat ","
               (List.map
                  (fun g -> Printf.sprintf "G%d" g)
                  (Iset.elements unacked)))
            site
    | Queue_op.Fin gid ->
        if Tsgd.has_incoming_dep state.tsgd gid then
          "fin blocked: incoming TSGD dependency not yet discharged"
        else "ready"
    | Queue_op.Init _ | Queue_op.Ack _ -> "ready"
  in
  let describe () =
    Printf.sprintf "scheme2: tsgd %d txns / %d edges / %d deps"
      (List.length (Tsgd.txns state.tsgd))
      (Tsgd.edge_count state.tsgd)
      (Tsgd.dep_count state.tsgd)
  in
  ( {
      Scheme.name = "scheme2";
      cond;
      act;
      wakeups;
      steps = (fun () -> state.steps);
      describe;
      explain;
    },
    state.tsgd )

let make () = fst (make_with_tsgd ())
