open Mdbs_model

type effect_ =
  | Submit_ser of Types.gid * Types.sid
  | Forward_ack of Types.gid * Types.sid
  | Abort_global of Types.gid

type wakeup = Wake_ser_at of Types.sid | Wake_fins | Wake_all

type t = {
  name : string;
  cond : Queue_op.t -> bool;
  act : Queue_op.t -> effect_ list;
  wakeups : Queue_op.t -> wakeup list;
  steps : unit -> int;
  describe : unit -> string;
  explain : Queue_op.t -> string;
}

let pp_effect ppf = function
  | Submit_ser (gid, site) -> Format.fprintf ppf "submit ser_%d(G%d)" site gid
  | Forward_ack (gid, site) -> Format.fprintf ppf "forward ack(ser_%d(G%d))" site gid
  | Abort_global gid -> Format.fprintf ppf "abort G%d" gid
