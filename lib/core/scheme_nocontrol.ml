open Mdbs_model

type state = {
  last_k : (Types.sid, Types.gid) Hashtbl.t;
  acked : (Types.gid * Types.sid, unit) Hashtbl.t;
  mutable steps : int;
}

let make () =
  let state = { last_k = Hashtbl.create 16; acked = Hashtbl.create 64; steps = 0 } in
  let bump n = state.steps <- state.steps + n in
  let cond op =
    bump 1;
    match op with
    | Queue_op.Ser (_, site) -> (
        match Hashtbl.find_opt state.last_k site with
        | None -> true
        | Some last -> Hashtbl.mem state.acked (last, site))
    | Queue_op.Init _ | Queue_op.Ack _ | Queue_op.Fin _ -> true
  in
  let act op =
    bump 1;
    match op with
    | Queue_op.Init _ -> []
    | Queue_op.Ser (gid, site) ->
        Hashtbl.replace state.last_k site gid;
        [ Scheme.Submit_ser (gid, site) ]
    | Queue_op.Ack (gid, site) ->
        Hashtbl.replace state.acked (gid, site) ();
        [ Scheme.Forward_ack (gid, site) ]
    | Queue_op.Fin _ -> []
  in
  let wakeups = function
    | Queue_op.Ack (_, site) -> [ Scheme.Wake_ser_at site ]
    | Queue_op.Init _ | Queue_op.Ser _ | Queue_op.Fin _ -> []
  in
  let explain op =
    match op with
    | Queue_op.Ser (_, site) -> (
        match Hashtbl.find_opt state.last_k site with
        | Some last when not (Hashtbl.mem state.acked (last, site)) ->
            Printf.sprintf "previous ser(G%d) at site %d not yet acked" last site
        | Some _ | None -> "ready")
    | Queue_op.Init _ | Queue_op.Ack _ | Queue_op.Fin _ -> "ready"
  in
  let describe () = "nocontrol" in
  {
    Scheme.name = "nocontrol";
    cond;
    act;
    wakeups;
    steps = (fun () -> state.steps);
    describe;
    explain;
  }
