(** The Basic_Scheme loop of Figure 3.

    The engine owns QUEUE and the WAIT set. It repeatedly selects the
    operation at the front of QUEUE; if the scheme's [cond] holds it runs
    [act] and then re-scans WAIT, processing every waiting operation whose
    condition has become true (to a fixpoint); otherwise the operation joins
    WAIT.

    The engine is synchronous: {!run} processes everything currently in
    QUEUE and returns the effects emitted, in order. The caller (GTM glue,
    replay harness, simulator) turns [Submit_ser] effects into site
    submissions and later enqueues the matching [Ack] operations. *)

type t

val create : ?obs:Mdbs_obs.Obs.t -> Scheme.t -> t
(** [?obs] (default {!Mdbs_obs.Obs.disabled}): when live, the engine emits a
    ["gtm2.wait"] span (with the scheme's {!Scheme.explain} reason) for
    every parked operation, feeds the [gtm2_queue_wait_ms] /
    [gtm2_fin_wait_ms] histograms and the [gtm2_wait_depth_max] gauge, and
    — when profiling is on — self-times [cond]/[act] as [gtm2.cond] /
    [gtm2.act]. *)

val scheme : t -> Scheme.t

val obs : t -> Mdbs_obs.Obs.t

val close_open_spans : t -> reason:string -> unit
(** End every open wait span with an [outcome] attribute — call before
    discarding the engine (GTM crash), so no span dangles. *)

val enqueue : t -> Queue_op.t -> unit
(** Insert at the back of QUEUE. *)

val enqueue_all : t -> Queue_op.t list -> unit
(** Insert a batch at the back of QUEUE, in list order. One {!run} after
    an [enqueue_all] costs a single pass over QUEUE plus the shared
    WAIT-rescan fixpoint — the amortization the service runtime's batched
    pump relies on. *)

val run : t -> Scheme.effect_ list
(** Process QUEUE until empty (WAIT may stay non-empty); returns effects in
    emission order. *)

val wait_set : t -> Queue_op.t list
(** Operations currently waiting (bucket order: per-site [Ser] buckets, then
    [Fin]s; insertion order within a bucket). *)

val wait_size : t -> int

val total_wait_insertions : t -> int
(** How many operations were ever added to WAIT — the paper's
    degree-of-concurrency metric (fewer insertions = higher concurrency,
    §4). An operation re-entering WAIT is not counted twice. *)

val ser_wait_insertions : t -> int
(** WAIT insertions counting only [Ser] operations — delayed serialization
    events, i.e. delayed subtransactions. *)

val total_processed : t -> int
(** Operations processed (acts executed). *)

val engine_steps : t -> int
(** Steps spent by the engine scanning WAIT (cond re-evaluations), on top of
    the scheme's own accounting. *)

val total_steps : t -> int
(** [engine_steps + scheme.steps ()]: the full cost in the paper's model,
    including the cost of attempting to reschedule delayed operations. *)

val idle : t -> bool
(** QUEUE empty (WAIT may be non-empty). *)
