open Mdbs_model

type state = {
  queues : (Types.sid, Types.gid Queue.t) Hashtbl.t;
  mutable steps : int;
}

let site_queue state site =
  match Hashtbl.find_opt state.queues site with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace state.queues site q;
      q

let make () =
  let state = { queues = Hashtbl.create 16; steps = 0 } in
  let bump n = state.steps <- state.steps + n in
  let cond op =
    bump 1;
    match op with
    | Queue_op.Ser (gid, site) -> Queue.peek_opt (site_queue state site) = Some gid
    | Queue_op.Init _ | Queue_op.Ack _ | Queue_op.Fin _ -> true
  in
  let act op =
    match op with
    | Queue_op.Init { gid; ser_sites } ->
        List.iter
          (fun site ->
            bump 1;
            Queue.add gid (site_queue state site))
          ser_sites;
        []
    | Queue_op.Ser (gid, site) ->
        bump 1;
        [ Scheme.Submit_ser (gid, site) ]
    | Queue_op.Ack (gid, site) ->
        bump 1;
        let q = site_queue state site in
        (match Queue.take_opt q with
        | Some front when front = gid -> ()
        | Some _ | None -> invalid_arg "Scheme0: ack does not match queue head");
        [ Scheme.Forward_ack (gid, site) ]
    | Queue_op.Fin _ ->
        bump 1;
        []
  in
  let wakeups = function
    | Queue_op.Ack (_, site) -> [ Scheme.Wake_ser_at site ]
    | Queue_op.Init _ | Queue_op.Ser _ | Queue_op.Fin _ -> []
  in
  let explain op =
    match op with
    | Queue_op.Ser (gid, site) -> (
        let q = site_queue state site in
        match Queue.peek_opt q with
        | Some head when head <> gid ->
            Printf.sprintf "behind G%d in site-%d FIFO (depth %d)" head site
              (Queue.length q)
        | Some _ | None -> "ready")
    | Queue_op.Init _ | Queue_op.Ack _ | Queue_op.Fin _ -> "ready"
  in
  let describe () =
    Hashtbl.fold
      (fun site q acc ->
        Printf.sprintf "%s s%d:[%s]" acc site
          (String.concat ";"
             (List.map string_of_int (List.of_seq (Queue.to_seq q)))))
      state.queues "scheme0"
  in
  {
    Scheme.name = "scheme0";
    cond;
    act;
    wakeups;
    steps = (fun () -> state.steps);
    describe;
    explain;
  }
