(** The GTM's durable log: the coordinator half of fault tolerance.

    The per-site {!Mdbs_site.Wal} makes participants recoverable; this log
    makes the {e coordinator} recoverable. It models stable storage at the
    GTM: admissions, per-operation dispatch/acknowledgement progress, commit
    decisions (2PC: logged after the last prepare acknowledgement, before
    any commit is sent), abort decisions, and completions. A restarted GTM
    replays it to learn, for every global transaction in flight at the
    crash, whether a decision had been reached — and therefore whether
    in-doubt participants must commit or (presumed abort) roll back.

    Like {!Mdbs_site.Wal}, the log survives a crash while every volatile
    GTM structure (GTM1 program counters, the engine's QUEUE/WAIT, the
    scheme's data structures) is lost. *)

open Mdbs_model

type decision = Commit | Abort

type record =
  | Admitted of Txn.t * bool  (** The transaction and its 2PC flag. *)
  | Dispatched of Types.gid * int  (** Operation [pc] sent to its site. *)
  | Acked of Types.gid * int  (** Operation [pc] acknowledged. *)
  | Decided of Types.gid * decision
      (** The global verdict. [Commit] is logged only once every prepare
          (2PC) has been acknowledged; anything undecided at a crash is
          presumed aborted. *)
  | Finished of Types.gid  (** [fin] enqueued; the transaction is resolved. *)

type t

val create : unit -> t

val append : t -> record -> unit

val records : t -> record list
(** In append order. *)

val length : t -> int

type entry = {
  txn : Txn.t;
  atomic : bool;
  dispatched : int;  (** Operations sent (highest dispatched pc + 1). *)
  acked : int;  (** Length of the acknowledged prefix. *)
  decision : decision option;
}

val analyze : t -> entry list
(** The transactions admitted but not [Finished] — the recovery work list,
    in admission order. *)

val decision_of : t -> Types.gid -> decision option

val pp_record : Format.formatter -> record -> unit
