(** Bounded block cache with heat tracking.

    Caches decoded SSTable data blocks keyed by (run id, block index).
    Every hit bumps the slot's heat; when the cache is full the coldest
    slot (minimal heat, oldest access as tie-break) is evicted, so a hot
    key set stays resident and repeated reads never touch disk. Hit and
    miss counts feed the [lsm_cache_{hits,misses}_total] counters. *)

open Mdbs_model

type t

val create : ?cap:int -> unit -> t
(** [cap] is in blocks (default 64). *)

val find_or_load :
  t -> int * int -> (unit -> (Item.t * Memtable.entry) array) ->
  (Item.t * Memtable.entry) array
(** Return the cached block, or load, cache (evicting if full) and return
    it. *)

val drop_table : t -> int -> unit
(** Forget every block of a run — called when compaction retires it. *)

val hits : t -> int

val misses : t -> int

val length : t -> int

val attach_metrics :
  t -> labels:(string * string) list -> Mdbs_obs.Metrics.t -> unit
