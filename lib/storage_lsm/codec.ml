(* Binary encoding helpers shared by the group-commit WAL and SSTables.
   Integers are 64-bit little-endian; an item is a tag byte (0 = Ticket,
   1 = Key) followed by the key as an i64. All multi-byte fields are
   fixed-width so decoders can slice without lookahead. *)

open Mdbs_model

let item_size = 9

let add_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_item buf = function
  | Item.Ticket ->
      Buffer.add_char buf '\000';
      add_i64 buf 0
  | Item.Key k ->
      Buffer.add_char buf '\001';
      add_i64 buf k

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let get_i64 b off = Int64.to_int (Bytes.get_int64_le b off)

let get_item b off =
  match Char.code (Bytes.get b off) with
  | 0 -> Item.Ticket
  | 1 -> Item.Key (get_i64 b (off + 1))
  | n -> Format.ksprintf failwith "Codec.get_item: bad tag %d" n

(* Write the whole buffer to [fd]; Unix.write may be partial. *)
let write_fully fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

(* Read exactly [len] bytes at absolute [off]; raises [End_of_file] on a
   short read. Plain lseek+read: each store is driven by a single domain. *)
let read_at fd off len =
  let b = Bytes.create len in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let got = ref 0 in
  while !got < len do
    let n = Unix.read fd b !got (len - !got) in
    if n = 0 then raise End_of_file;
    got := !got + n
  done;
  b
