open Mdbs_model
module Crc32 = Mdbs_util.Crc32

exception Corrupt of string

let corrupt fmt = Format.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "MDBSSST2"

(* index_off, index_len, count, min_key, max_key, crc32(fields), magic. *)
let footer_fields_size = 8 + 8 + 8 + Codec.item_size + Codec.item_size

let footer_size = footer_fields_size + 4 + 8

(* One entry on disk: item (9) + kind tag (1) + value (8). *)
let entry_size = Codec.item_size + 1 + 8

let add_entry buf (item, e) =
  Codec.add_item buf item;
  (match e with
  | Memtable.Value v ->
      Buffer.add_char buf '\000';
      Codec.add_i64 buf v
  | Memtable.Tombstone ->
      Buffer.add_char buf '\001';
      Codec.add_i64 buf 0)

type t = {
  id : int;
  path : string;
  fd : Unix.file_descr;
  index : (Item.t * int * int) array;
      (* per block: first item, file offset, length incl. trailing crc *)
  count : int;
  min_key : Item.t;
  max_key : Item.t;
}

let id t = t.id
let count t = t.count
let min_key t = t.min_key
let max_key t = t.max_key
let blocks t = Array.length t.index

(* Write an immutable run: data blocks, then the sparse index (one entry
   per block), then a fixed footer. The file is fsynced before it returns,
   so a manifest written afterwards never references an unflushed run. *)
let write ~path ~block_entries entries =
  (match entries with [] -> invalid_arg "Sstable.write: empty run" | _ -> ());
  let buf = Buffer.create 4096 in
  let index = ref [] in
  let rec chunks = function
    | [] -> ()
    | es ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | e :: rest -> take (n - 1) (e :: acc) rest
        in
        let block, rest = take block_entries [] es in
        let first = fst (List.hd block) in
        let off = Buffer.length buf in
        let body = Buffer.create (4 + (List.length block * entry_size)) in
        Codec.add_u32 body (List.length block);
        List.iter (add_entry body) block;
        let b = Buffer.to_bytes body in
        Buffer.add_bytes buf b;
        Codec.add_u32 buf (Crc32.digest_bytes b 0 (Bytes.length b));
        index := (first, off, Bytes.length b + 4) :: !index;
        chunks rest
  in
  chunks entries;
  let index = List.rev !index in
  let index_off = Buffer.length buf in
  let ibody = Buffer.create 256 in
  Codec.add_u32 ibody (List.length index);
  List.iter
    (fun (first, off, len) ->
      Codec.add_item ibody first;
      Codec.add_i64 ibody off;
      Codec.add_i64 ibody len)
    index;
  let ib = Buffer.to_bytes ibody in
  Buffer.add_bytes buf ib;
  Codec.add_u32 buf (Crc32.digest_bytes ib 0 (Bytes.length ib));
  let fbody = Buffer.create footer_size in
  Codec.add_i64 fbody index_off;
  Codec.add_i64 fbody (Bytes.length ib);
  Codec.add_i64 fbody (List.length entries);
  Codec.add_item fbody (fst (List.hd entries));
  Codec.add_item fbody (fst (List.nth entries (List.length entries - 1)));
  let fb = Buffer.to_bytes fbody in
  Buffer.add_bytes buf fb;
  Codec.add_u32 buf (Crc32.digest_bytes fb 0 (Bytes.length fb));
  Buffer.add_string buf magic;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Codec.write_fully fd (Buffer.to_bytes buf);
  Unix.fsync fd;
  Unix.close fd

let open_file ~id path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0o644 in
  try
    let size = (Unix.fstat fd).Unix.st_size in
    if size < footer_size then corrupt "%s: truncated (%d bytes)" path size;
    let f = Codec.read_at fd (size - footer_size) footer_size in
    if Bytes.sub_string f (footer_size - 8) 8 <> magic then
      corrupt "%s: bad magic" path;
    if
      Codec.get_u32 f footer_fields_size
      <> Crc32.digest_bytes f 0 footer_fields_size
    then corrupt "%s: footer checksum mismatch" path;
    let index_off = Codec.get_i64 f 0 in
    let index_len = Codec.get_i64 f 8 in
    let count = Codec.get_i64 f 16 in
    let min_key = Codec.get_item f 24 in
    let max_key = Codec.get_item f (24 + Codec.item_size) in
    if index_off < 0 || index_len < 4 || index_off + index_len + 4 > size then
      corrupt "%s: bad index bounds" path;
    let ib = Codec.read_at fd index_off (index_len + 4) in
    if
      Codec.get_u32 ib index_len <> Crc32.digest_bytes ib 0 index_len
    then corrupt "%s: index checksum mismatch" path;
    let nblocks = Codec.get_u32 ib 0 in
    if index_len <> 4 + (nblocks * (Codec.item_size + 16)) then
      corrupt "%s: index length %d does not match %d blocks" path index_len
        nblocks;
    let index =
      Array.init nblocks (fun i ->
          let off = 4 + (i * (Codec.item_size + 16)) in
          ( Codec.get_item ib off,
            Codec.get_i64 ib (off + Codec.item_size),
            Codec.get_i64 ib (off + Codec.item_size + 8) ))
    in
    { id; path; fd; index; count; min_key; max_key }
  with e ->
    Unix.close fd;
    raise e

let read_block t i =
  let _, off, len = t.index.(i) in
  let b = Codec.read_at t.fd off len in
  let body_len = len - 4 in
  if Codec.get_u32 b body_len <> Crc32.digest_bytes b 0 body_len then
    corrupt "%s: block %d checksum mismatch" t.path i;
  let n = Codec.get_u32 b 0 in
  Array.init n (fun j ->
      let off = 4 + (j * entry_size) in
      let item = Codec.get_item b off in
      let e =
        match Char.code (Bytes.get b (off + Codec.item_size)) with
        | 0 -> Memtable.Value (Codec.get_i64 b (off + Codec.item_size + 1))
        | 1 -> Memtable.Tombstone
        | n -> corrupt "%s: block %d bad entry tag %d" t.path i n
      in
      (item, e))

(* Candidate block for [key]: the last block whose first key <= key. *)
let candidate_block t key =
  let lo = ref 0 and hi = ref (Array.length t.index - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let first, _, _ = t.index.(mid) in
    if Item.compare first key <= 0 then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let find t ~block key =
  if Item.compare key t.min_key < 0 || Item.compare key t.max_key > 0 then None
  else
    match candidate_block t key with
    | -1 -> None
    | bi ->
        let data = block t bi in
        let lo = ref 0 and hi = ref (Array.length data - 1) and hit = ref None in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          let item, e = data.(mid) in
          let c = Item.compare item key in
          if c = 0 then begin
            hit := Some e;
            lo := !hi + 1
          end
          else if c < 0 then lo := mid + 1
          else hi := mid - 1
        done;
        !hit

let read_all t =
  List.concat_map
    (fun i -> Array.to_list (read_block t i))
    (List.init (Array.length t.index) Fun.id)

let close t = Unix.close t.fd
