(** The persistent LSM storage engine: memtable over leveled SSTables,
    fronted by a group-commit WAL.

    Presents the same contract as the in-memory site storage
    ({!Mdbs_site.Storage}): integer values, unwritten items read as 0,
    per-transaction before-image undo logs. Writes land in the
    {!Memtable} and spill to L0 {!Sstable} runs at the watermark;
    {!Levels} compacts runs and tracks them in a CRC-checked manifest;
    reads fall through memtable → L0 → L1 via the heat-aware
    {!Block_cache}.

    Durability protocol: the caller appends each logical WAL record via
    {!wal_append} and calls {!wal_sync} at its group-commit points. A
    flush syncs the WAL before writing a run, so on-disk runs never get
    ahead of the durable log. Recovery ({!open_dir}) is manifest → WAL
    suffix redo → loser undo with logged compensation — the file-backed
    equivalent of {!Mdbs_site.Wal.recovered_state}. *)

open Mdbs_model

type params = {
  memtable_entries : int;  (** Flush watermark (distinct buffered items). *)
  block_entries : int;  (** Entries per SSTable data block. *)
  l0_trigger : int;  (** L0 run count that triggers compaction. *)
  run_entries : int;  (** Max entries per compacted L1 run. *)
  cache_blocks : int;  (** Block cache capacity. *)
  wal_checkpoint_records : int;
      (** Log length (records) that forces a checkpoint at the next
          group-commit point, bounding the WAL even when the memtable
          never crosses its watermark. *)
}

val default_params : params
(** 1024-entry memtable, 64-entry blocks, compaction at 4 L0 runs,
    4096-entry L1 runs, 64-block cache, checkpoint at 4096 WAL records. *)

type t

val open_dir : ?params:params -> string -> t
(** Open (or create) a store rooted at a directory, running recovery:
    manifest runs, then WAL-suffix redo, then loser undo (compensation
    logged and synced). Raises {!Sstable.Corrupt} on damaged files. *)

val get : t -> Item.t -> int

val set : t -> Item.t -> int -> unit

val delete : t -> Item.t -> unit

val write_logged : t -> Types.tid -> Item.t -> int -> unit

val commit_txn : t -> Types.tid -> unit

val register_undo : t -> Types.tid -> (Item.t * int) list -> unit

val undo_log : t -> Types.tid -> (Item.t * int) list

val undo_txn : t -> Types.tid -> unit

val items : t -> (Item.t * int) list
(** Live state (memtable over runs, tombstones resolved), sorted. *)

val load : t -> (Item.t * int) list -> unit

val wal_append : t -> Group_wal.record -> unit

val wal_sync : t -> unit
(** The group-commit point: one fsync for everything appended since the
    last one. Also the WAL-bound checkpoint trigger — if the log has
    reached [wal_checkpoint_records] and a rewrite would shrink it, the
    store flushes (or, with an empty memtable, just republishes the
    manifest mark) and rotates the log. Safe here and only here: at a
    group-commit point every appended record's effect is applied. *)

val durable_bytes : t -> int

val recovered_in_doubt : t -> Types.tid list
(** Prepared-but-unresolved transactions found by the last {!open_dir}. *)

val crash_reset : ?lossy:bool -> t -> t
(** Simulate a crash-and-restart in process: sync pending WAL appends
    (the caller already logged its compensation), drop all volatile state
    and reopen from disk. Metrics attachments carry over. With
    [~lossy:true] the pending appends are discarded instead of synced —
    a power-failure crash that loses the unsynced group-commit window,
    so recovery rewinds to the durable prefix (fault-injection mode;
    acknowledged outcomes are still never lost, because acks ride behind
    the fsync). *)

val flush : t -> unit
(** Force a memtable flush (tests). *)

val attach_metrics :
  t -> labels:(string * string) list -> Mdbs_obs.Metrics.t -> unit
(** Register the storage-tier instruments: [lsm_flushes_total],
    [lsm_compactions_total], [lsm_cache_{hits,misses}_total],
    [lsm_read_ms], [lsm_fsync_ms], [lsm_fsync_batch_size]. *)

val close : t -> unit

val predicted_items : string -> (Item.t * int) list
(** Offline audit: the state a site directory's files promise — manifest
    runs overlaid with the WAL records past the manifest's high-water
    mark, losers undone from their before-images. Recovered storage must
    equal this, item for item ([mdbs recover] and the QCheck schedule
    property both check it). Reads the directory without mutating it. *)

type stats = {
  flushes : int;
  compactions : int;
  cache_hits : int;
  cache_misses : int;
  fsyncs : int;
  wal_records_total : int;
      (** Ever appended, across checkpoint rotations (monotonic). *)
  wal_rotations : int;
  bytes_durable : int;
  l0_runs : int;
  l1_runs : int;
  memtable : int;
}

val stats : t -> stats

val mkdir_p : string -> unit
