(** The persistent LSM storage engine: memtable over leveled SSTables,
    fronted by a group-commit WAL.

    Presents the same contract as the in-memory site storage
    ({!Mdbs_site.Storage}): integer values, unwritten items read as 0,
    per-transaction before-image undo logs. Writes land in the
    {!Memtable} and spill to L0 {!Sstable} runs at the watermark;
    {!Levels} compacts runs and tracks them in a CRC-checked manifest;
    reads fall through memtable → L0 → L1 via the heat-aware
    {!Block_cache}.

    Durability protocol: the caller appends each logical WAL record via
    {!wal_append} and calls {!wal_sync} at its group-commit points. A
    flush syncs the WAL before writing a run, so on-disk runs never get
    ahead of the durable log. Recovery ({!open_dir}) is manifest → WAL
    suffix redo → loser undo with logged compensation — the file-backed
    equivalent of {!Mdbs_site.Wal.recovered_state}. *)

open Mdbs_model

type params = {
  memtable_entries : int;  (** Flush watermark (distinct buffered items). *)
  block_entries : int;  (** Entries per SSTable data block. *)
  l0_trigger : int;  (** L0 run count that triggers compaction. *)
  run_entries : int;  (** Max entries per compacted L1 run. *)
  cache_blocks : int;  (** Block cache capacity. *)
}

val default_params : params
(** 1024-entry memtable, 64-entry blocks, compaction at 4 L0 runs,
    4096-entry L1 runs, 64-block cache. *)

type t

val open_dir : ?params:params -> string -> t
(** Open (or create) a store rooted at a directory, running recovery:
    manifest runs, then WAL-suffix redo, then loser undo (compensation
    logged and synced). Raises {!Sstable.Corrupt} on damaged files. *)

val get : t -> Item.t -> int

val set : t -> Item.t -> int -> unit

val delete : t -> Item.t -> unit

val write_logged : t -> Types.tid -> Item.t -> int -> unit

val commit_txn : t -> Types.tid -> unit

val register_undo : t -> Types.tid -> (Item.t * int) list -> unit

val undo_log : t -> Types.tid -> (Item.t * int) list

val undo_txn : t -> Types.tid -> unit

val items : t -> (Item.t * int) list
(** Live state (memtable over runs, tombstones resolved), sorted. *)

val load : t -> (Item.t * int) list -> unit

val wal_append : t -> Group_wal.record -> unit

val wal_sync : t -> unit
(** The group-commit point: one fsync for everything appended since the
    last one. *)

val durable_bytes : t -> int

val recovered_in_doubt : t -> Types.tid list
(** Prepared-but-unresolved transactions found by the last {!open_dir}. *)

val crash_reset : t -> t
(** Simulate a crash-and-restart in process: sync pending WAL appends
    (the caller already logged its compensation), drop all volatile state
    and reopen from disk. Metrics attachments carry over. *)

val flush : t -> unit
(** Force a memtable flush (tests). *)

val attach_metrics :
  t -> labels:(string * string) list -> Mdbs_obs.Metrics.t -> unit
(** Register the storage-tier instruments: [lsm_flushes_total],
    [lsm_compactions_total], [lsm_cache_{hits,misses}_total],
    [lsm_read_ms], [lsm_fsync_ms], [lsm_fsync_batch_size]. *)

val close : t -> unit

type stats = {
  flushes : int;
  compactions : int;
  cache_hits : int;
  cache_misses : int;
  fsyncs : int;
  wal_records_total : int;
  bytes_durable : int;
  l0_runs : int;
  l1_runs : int;
  memtable : int;
}

val stats : t -> stats

val mkdir_p : string -> unit
