(** Leveled run management: the manifest, L0, L1 and compaction.

    L0 holds memtable flushes in arrival order (runs may overlap); L1
    holds disjoint, sorted runs produced by compaction. When L0 reaches
    its trigger, every L0 run is merged with L1 — newest version wins —
    and tombstones are dropped, since L1 is the bottom level and there is
    nothing older left to mask.

    The [MANIFEST] names the live runs per level and the count of WAL
    records they cover (recovery replays only the suffix past it). It is
    CRC-closed and replaced atomically, so a crash anywhere in flush or
    compaction leaves a consistent run set: old manifest → old runs, new
    manifest → new runs, with at most orphaned files to sweep. *)

open Mdbs_model

module ItemMap : Map.S with type key = Item.t

type t

val open_ :
  ?block_entries:int -> ?l0_trigger:int -> ?run_entries:int ->
  ?cache_blocks:int -> string -> t
(** Open the level state in a directory, reading the manifest (and
    opening every live run) if one exists. Raises {!Sstable.Corrupt} on a
    damaged manifest or run. *)

val find : t -> Item.t -> Memtable.entry option
(** Point lookup: L0 newest → oldest, then the (at most one) covering L1
    run, through the block cache. *)

val state : t -> Memtable.entry ItemMap.t
(** The full on-disk state, tombstones preserved; bypasses the cache. *)

val flush : t -> wal_records:int -> (Item.t * Memtable.entry) list -> unit
(** Write a new L0 run from sorted memtable entries and persist the
    manifest with the WAL high-water mark it covers. Empty input is a
    no-op. *)

val checkpoint : t -> wal_records:int -> unit
(** Persist the manifest with a new WAL high-water mark without writing
    a run. Only sound when the caller's memtable is empty — every newly
    covered record must already be reflected in the runs or retained by
    the WAL rewrite that follows. *)

val maybe_compact : t -> bool
(** Compact if L0 reached its trigger; returns whether it did. *)

val wal_records : t -> int

val cache : t -> Block_cache.t

val flushes : t -> int

val compactions : t -> int

val runs : t -> int * int
(** [(l0, l1)] live run counts. *)

val attach_metrics :
  t -> labels:(string * string) list -> Mdbs_obs.Metrics.t -> unit
(** [lsm_flushes_total], [lsm_compactions_total] and the cache counters. *)

val close : t -> unit
