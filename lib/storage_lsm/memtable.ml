open Mdbs_model
module ItemMap = Map.Make (Item)

type entry = Value of int | Tombstone

type t = { mutable map : entry ItemMap.t }

let create () = { map = ItemMap.empty }

let put t item e = t.map <- ItemMap.add item e t.map

let find t item = ItemMap.find_opt item t.map

let length t = ItemMap.cardinal t.map

let entries t = ItemMap.bindings t.map

let clear t = t.map <- ItemMap.empty

let is_empty t = ItemMap.is_empty t.map
