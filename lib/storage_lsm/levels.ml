open Mdbs_model
module Crc32 = Mdbs_util.Crc32
module Metrics = Mdbs_obs.Metrics
module ItemMap = Map.Make (Item)

type t = {
  dir : string;
  block_entries : int;
  l0_trigger : int;
  run_entries : int;
  cache : Block_cache.t;
  mutable l0 : Sstable.t list; (* newest first: flush order *)
  mutable l1 : Sstable.t list; (* disjoint key ranges, sorted by min key *)
  mutable next_id : int;
  mutable wal_records : int; (* WAL records already folded into the runs *)
  mutable flushes : int;
  mutable compactions : int;
  mutable m_flushes : Metrics.counter;
  mutable m_compactions : Metrics.counter;
}

let manifest_path dir = Filename.concat dir "MANIFEST"

let run_path dir id = Filename.concat dir (Printf.sprintf "sst-%d.sst" id)

let corrupt fmt = Format.ksprintf (fun s -> raise (Sstable.Corrupt s)) fmt

(* --- manifest ----------------------------------------------------------- *)
(* A small text file naming the live runs per level plus the WAL record
   count they cover, closed by a CRC line. Replaced atomically
   (tmp + rename + directory fsync), so a crash leaves either the old or
   the new manifest, never a torn one. *)

let save_manifest t =
  let b = Buffer.create 256 in
  Buffer.add_string b "mdbs-lsm v1\n";
  Buffer.add_string b (Printf.sprintf "wal_records %d\n" t.wal_records);
  Buffer.add_string b (Printf.sprintf "next_id %d\n" t.next_id);
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "l0 sst-%d.sst\n" (Sstable.id s)))
    t.l0;
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "l1 sst-%d.sst\n" (Sstable.id s)))
    t.l1;
  let body = Buffer.contents b in
  let out = body ^ Printf.sprintf "crc %d\n" (Crc32.digest_string body) in
  let tmp = manifest_path t.dir ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Codec.write_fully fd (Bytes.of_string out);
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp (manifest_path t.dir);
  let dfd = Unix.openfile t.dir [ Unix.O_RDONLY ] 0 in
  Unix.fsync dfd;
  Unix.close dfd

let parse_manifest path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let crc_at =
    match String.rindex_opt (String.trim raw) '\n' with
    | None -> corrupt "%s: no crc line" path
    | Some i -> i + 1
  in
  let body = String.sub raw 0 crc_at in
  let crc_line = String.trim (String.sub raw crc_at (String.length raw - crc_at)) in
  (match String.split_on_char ' ' crc_line with
  | [ "crc"; n ] when int_of_string_opt n = Some (Crc32.digest_string body) -> ()
  | _ -> corrupt "%s: checksum mismatch" path);
  let lines = String.split_on_char '\n' (String.trim body) in
  match lines with
  | "mdbs-lsm v1" :: rest ->
      let wal_records = ref 0 and next_id = ref 0 in
      let l0 = ref [] and l1 = ref [] in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "wal_records"; n ] -> wal_records := int_of_string n
          | [ "next_id"; n ] -> next_id := int_of_string n
          | [ "l0"; f ] -> l0 := f :: !l0
          | [ "l1"; f ] -> l1 := f :: !l1
          | _ -> corrupt "%s: bad line %S" path line)
        rest;
      (!wal_records, !next_id, List.rev !l0, List.rev !l1)
  | _ -> corrupt "%s: bad header" path

let id_of_run file =
  match Scanf.sscanf_opt file "sst-%d.sst" Fun.id with
  | Some id -> id
  | None -> corrupt "manifest names unparsable run %S" file

let open_ ?(block_entries = 64) ?(l0_trigger = 4) ?(run_entries = 4096)
    ?(cache_blocks = 64) dir =
  let cache = Block_cache.create ~cap:cache_blocks () in
  let t =
    {
      dir;
      block_entries;
      l0_trigger;
      run_entries;
      cache;
      l0 = [];
      l1 = [];
      next_id = 0;
      wal_records = 0;
      flushes = 0;
      compactions = 0;
      m_flushes = Metrics.counter Metrics.null "lsm_flushes_total";
      m_compactions = Metrics.counter Metrics.null "lsm_compactions_total";
    }
  in
  if Sys.file_exists (manifest_path dir) then begin
    let wal_records, next_id, l0, l1 = parse_manifest (manifest_path dir) in
    let open_run f =
      Sstable.open_file ~id:(id_of_run f) (Filename.concat dir f)
    in
    t.wal_records <- wal_records;
    t.next_id <- next_id;
    t.l0 <- List.map open_run l0;
    t.l1 <- List.map open_run l1
  end;
  t

let attach_metrics t ~labels metrics =
  t.m_flushes <- Metrics.counter metrics ~labels "lsm_flushes_total";
  t.m_compactions <- Metrics.counter metrics ~labels "lsm_compactions_total";
  Block_cache.attach_metrics t.cache ~labels metrics

let wal_records t = t.wal_records

let cache t = t.cache

let cached_block t sst i =
  Block_cache.find_or_load t.cache (Sstable.id sst, i) (fun () ->
      Sstable.read_block sst i)

(* --- reads -------------------------------------------------------------- *)

let in_range sst key =
  Item.compare key (Sstable.min_key sst) >= 0
  && Item.compare key (Sstable.max_key sst) <= 0

let find t key =
  let block = cached_block t in
  let rec scan_l0 = function
    | [] ->
        (* L1 runs are disjoint: at most one can hold the key. *)
        List.find_opt (fun sst -> in_range sst key) t.l1
        |> Option.map (fun sst -> Sstable.find sst ~block key)
        |> Option.join
    | sst :: rest -> (
        if not (in_range sst key) then scan_l0 rest
        else
          match Sstable.find sst ~block key with
          | Some e -> Some e
          | None -> scan_l0 rest)
  in
  scan_l0 t.l0

(* Full on-disk state: L1 (the oldest data) overlaid by L0 runs oldest to
   newest. Tombstones are preserved so the caller can mask values below
   the memtable. Bypasses the cache: a state fold is a scan, and letting
   it evict the hot set would defeat the cache's purpose. *)
let state t =
  let apply map sst =
    List.fold_left
      (fun map (item, e) -> ItemMap.add item e map)
      map (Sstable.read_all sst)
  in
  let map = List.fold_left apply ItemMap.empty t.l1 in
  List.fold_left apply map (List.rev t.l0)

(* --- flush and compaction ----------------------------------------------- *)

let flush t ~wal_records entries =
  match entries with
  | [] -> ()
  | entries ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let path = run_path t.dir id in
      Sstable.write ~path ~block_entries:t.block_entries entries;
      t.l0 <- Sstable.open_file ~id path :: t.l0;
      t.wal_records <- wal_records;
      t.flushes <- t.flushes + 1;
      Metrics.inc t.m_flushes;
      save_manifest t

(* Advance the coverage mark without writing a run: sound only when the
   memtable is empty, i.e. every record being declared covered is either
   pure control flow or an unresolved transaction's record retained by
   the WAL rewrite. *)
let checkpoint t ~wal_records =
  t.wal_records <- wal_records;
  save_manifest t

let rec chunk n = function
  | [] -> []
  | es ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | e :: rest -> take (k - 1) (e :: acc) rest
      in
      let c, rest = take n [] es in
      c :: chunk n rest

let maybe_compact t =
  if t.l0_trigger <= 0 || List.length t.l0 < t.l0_trigger then false
  else begin
    let old = t.l0 @ t.l1 in
    (* Newest wins: start from L1, overlay L0 oldest → newest. L1 is the
       bottom level, so tombstones have nothing left to mask and are
       dropped — this is where deleted keys actually disappear. *)
    let merged =
      ItemMap.filter
        (fun _ e -> e <> Memtable.Tombstone)
        (state t)
    in
    let runs =
      List.map
        (fun entries ->
          let id = t.next_id in
          t.next_id <- id + 1;
          let path = run_path t.dir id in
          Sstable.write ~path ~block_entries:t.block_entries entries;
          Sstable.open_file ~id path)
        (chunk t.run_entries (ItemMap.bindings merged))
    in
    t.l0 <- [];
    t.l1 <- runs;
    t.compactions <- t.compactions + 1;
    Metrics.inc t.m_compactions;
    save_manifest t;
    (* Only after the manifest stopped referencing them. *)
    List.iter
      (fun sst ->
        Block_cache.drop_table t.cache (Sstable.id sst);
        Sstable.close sst;
        try Unix.unlink (run_path t.dir (Sstable.id sst))
        with Unix.Unix_error _ -> ())
      old;
    true
  end

let flushes t = t.flushes

let compactions t = t.compactions

let runs t = (List.length t.l0, List.length t.l1)

let close t =
  List.iter Sstable.close t.l0;
  List.iter Sstable.close t.l1;
  t.l0 <- [];
  t.l1 <- []
