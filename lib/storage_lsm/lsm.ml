open Mdbs_model
module Metrics = Mdbs_obs.Metrics
module Stats = Mdbs_util.Stats
module Iset = Mdbs_util.Iset

type params = {
  memtable_entries : int;
  block_entries : int;
  l0_trigger : int;
  run_entries : int;
  cache_blocks : int;
  wal_checkpoint_records : int;
}

let default_params =
  {
    memtable_entries = 1024;
    block_entries = 64;
    l0_trigger = 4;
    run_entries = 4096;
    cache_blocks = 64;
    wal_checkpoint_records = 4096;
  }

type t = {
  dir : string;
  params : params;
  mem : Memtable.t;
  wal : Group_wal.t;
  levels : Levels.t;
  undo : (Types.tid, (Item.t * int) list ref) Hashtbl.t; (* newest first *)
  recovered_in_doubt : Types.tid list;
  mutable h_read : Stats.histogram;
  mutable timed : bool;
  mutable metrics : ((string * string) list * Metrics.t) option;
      (* remembered so crash_reset can re-attach to the same registry *)
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let wal_path dir = Filename.concat dir "wal.log"

(* Raw state write: into the memtable, never triggering a flush. Flush
   decisions happen only on the transaction-visible write path, so replay
   can never publish a manifest claiming WAL records it has not applied. *)
let put_raw t item e = Memtable.put t.mem item e

let read_levels t item =
  if t.timed then begin
    let t0 = Unix.gettimeofday () in
    let e = Levels.find t.levels item in
    Metrics.observe t.h_read ((Unix.gettimeofday () -. t0) *. 1000.);
    e
  end
  else Levels.find t.levels item

let get t item =
  match Memtable.find t.mem item with
  | Some (Memtable.Value v) -> v
  | Some Memtable.Tombstone -> 0
  | None -> (
      match read_levels t item with
      | Some (Memtable.Value v) -> v
      | Some Memtable.Tombstone | None -> 0)

let flush t =
  if not (Memtable.is_empty t.mem) then begin
    (* WAL strictly ahead of data: every record a run could contain must
       be durable before the manifest references the run. *)
    Group_wal.sync t.wal;
    (* The manifest's high-water mark is the post-checkpoint log length:
       after rotation only unresolved transactions' records remain, and
       all of them are already folded into the runs. If the process dies
       between the publish and the rotation, recovery replays the old
       log's suffix past this mark — a subset of records the new run
       already reflects, so the replay is idempotent. *)
    let kept = Group_wal.live_count t.wal in
    Levels.flush t.levels ~wal_records:kept (Memtable.entries t.mem);
    Memtable.clear t.mem;
    Group_wal.rotate t.wal;
    ignore (Levels.maybe_compact t.levels)
  end

let maybe_flush t =
  if Memtable.length t.mem >= t.params.memtable_entries then flush t

let put t item e =
  put_raw t item e;
  maybe_flush t

let set t item v = put t item (Memtable.Value v)

let delete t item = put t item Memtable.Tombstone

let write_logged t tid item v =
  let before = get t item in
  (match Hashtbl.find_opt t.undo tid with
  | Some log -> log := (item, before) :: !log
  | None -> Hashtbl.replace t.undo tid (ref [ (item, before) ]));
  set t item v

let commit_txn t tid = Hashtbl.remove t.undo tid

let register_undo t tid entries =
  match Hashtbl.find_opt t.undo tid with
  | Some log -> log := entries @ !log
  | None -> Hashtbl.replace t.undo tid (ref entries)

let undo_log t tid =
  match Hashtbl.find_opt t.undo tid with Some log -> !log | None -> []

let undo_txn t tid =
  (* Raw puts, one flush decision at the end: the caller appends all the
     compensation records before applying the undo, so a watermark flush
     halfway through would publish a manifest claiming records whose
     effects had only partially reached the memtable. *)
  (match Hashtbl.find_opt t.undo tid with
  | Some log ->
      List.iter
        (fun (item, before) -> put_raw t item (Memtable.Value before))
        !log
  | None -> ());
  Hashtbl.remove t.undo tid;
  maybe_flush t

let items t =
  let state =
    List.fold_left
      (fun map (item, e) -> Levels.ItemMap.add item e map)
      (Levels.state t.levels) (Memtable.entries t.mem)
  in
  Levels.ItemMap.fold
    (fun item e acc ->
      match e with
      | Memtable.Value v -> (item, v) :: acc
      | Memtable.Tombstone -> acc)
    state []
  |> List.rev

let load t pairs = List.iter (fun (item, v) -> set t item v) pairs

let wal_append t r = Group_wal.append t.wal r

(* Checkpoint the log even when the memtable never crosses its watermark
   (a hot keyspace smaller than the memtable rewrites the same entries
   forever and would otherwise grow the WAL without bound). With a
   non-empty memtable this is an early flush; with an empty one we only
   advance the manifest's mark and rewrite the log — sound because an
   empty memtable means no effect record since the last flush is
   uncovered. The [live_count] guard skips rotations that cannot shrink
   the log (all records belong to unresolved transactions). *)
let checkpoint t =
  if Memtable.is_empty t.mem then begin
    Group_wal.sync t.wal;
    Levels.checkpoint t.levels ~wal_records:(Group_wal.live_count t.wal);
    Group_wal.rotate t.wal
  end
  else flush t

let maybe_checkpoint t =
  if
    Group_wal.appended t.wal >= t.params.wal_checkpoint_records
    && Group_wal.appended t.wal > Group_wal.live_count t.wal
  then checkpoint t

(* The group-commit point is also the only safe WAL-bound trigger site:
   every appended record's effect has been applied by now (mid-operation
   windows — e.g. compensation records appended before the undo runs —
   never reach here). Never trigger from [wal_append] itself. *)
let wal_sync t =
  Group_wal.sync t.wal;
  maybe_checkpoint t

let durable_bytes t = Group_wal.durable_bytes t.wal

let recovered_in_doubt t = t.recovered_in_doubt

(* --- open / recovery ---------------------------------------------------- *)
(* Order: manifest (runs give the state as of the last flush) → WAL suffix
   redo (records past the manifest's high-water mark, applied in log
   order) → loser undo (newest first), with compensation records appended
   and synced so the log stays pure redo across repeated crashes. This is
   the same redo-undo doctrine as Wal.recovered_state, executed against
   files. *)

let open_dir ?(params = default_params) dir =
  mkdir_p dir;
  let wal, records = Group_wal.open_ (wal_path dir) in
  let levels =
    Levels.open_ ~block_entries:params.block_entries
      ~l0_trigger:params.l0_trigger ~run_entries:params.run_entries
      ~cache_blocks:params.cache_blocks dir
  in
  let analysis = Group_wal.analyze records in
  let t =
    {
      dir;
      params;
      mem = Memtable.create ();
      wal;
      levels;
      undo = Hashtbl.create 16;
      recovered_in_doubt = Iset.to_list analysis.Group_wal.in_doubt;
      h_read = Metrics.histogram Metrics.null "lsm_read_ms";
      timed = false;
      metrics = None;
    }
  in
  (* Redo: replay the WAL suffix the runs do not cover. *)
  let base = Levels.wal_records levels in
  List.iteri
    (fun i r ->
      if i >= base then
        match r with
        | Group_wal.Load (item, v) | Group_wal.Write (_, item, _, v) ->
            put_raw t item (Memtable.Value v)
        | Group_wal.Begin _ | Group_wal.Prepared _ | Group_wal.Committed _
        | Group_wal.Aborted _ -> ())
    records;
  (* Undo the losers — transactions active at the crash — newest write
     first, logging compensation so a second recovery sees them aborted. *)
  if not (Iset.is_empty analysis.Group_wal.losers) then begin
    Iset.iter
      (fun tid ->
        List.iter
          (fun r ->
            match r with
            | Group_wal.Write (owner, item, before, _) when owner = tid ->
                let now = get t item in
                Group_wal.append wal (Group_wal.Write (tid, item, now, before));
                put_raw t item (Memtable.Value before)
            | _ -> ())
          (List.rev records);
        Group_wal.append wal (Group_wal.Aborted tid))
      analysis.Group_wal.losers;
    Group_wal.sync wal
  end;
  maybe_flush t;
  t

let attach_metrics t ~labels metrics =
  t.metrics <- Some (labels, metrics);
  t.h_read <-
    Metrics.histogram metrics ~labels ~bounds:Group_wal.ms_bounds "lsm_read_ms";
  t.timed <- Metrics.enabled metrics;
  Group_wal.attach_metrics t.wal ~labels metrics;
  Levels.attach_metrics t.levels ~labels metrics

let close t =
  Group_wal.close t.wal;
  Levels.close t.levels

(* Crash: volatile state (memtable, undo logs, cache) dies; everything
   else is rebuilt from manifest + WAL. Pending WAL appends are synced
   first — the in-process caller (Local_dbms.crash) has already logged
   compensation for its losers, and those records must survive into the
   reopened log. [~lossy:true] instead drops the unsynced buffer, the
   bounded loss a real power failure inflicts between group commits:
   recovery then sees only the durable prefix, so unacknowledged
   commits vanish while every synced one survives. *)
let crash_reset ?(lossy = false) t =
  if lossy then Group_wal.discard_pending t.wal else Group_wal.sync t.wal;
  close t;
  let t' = open_dir ~params:t.params t.dir in
  (match t.metrics with
  | Some (labels, metrics) -> attach_metrics t' ~labels metrics
  | None -> ());
  t'

(* Offline audit predictor ([mdbs recover], tests): the state the on-disk
   files alone promise, computed the flat way — manifest runs, WAL-suffix
   redo past the manifest's mark, loser undo from before-images — with
   none of [open_dir]'s memtable machinery. With WAL checkpointing the
   log holds only unresolved transactions plus the post-flush suffix, so
   "replay(WAL) over manifest" is the auditable invariant, not
   "replay(WAL)" alone. *)
let predicted_items dir =
  let records, _ = Group_wal.read_file (wal_path dir) in
  let levels = Levels.open_ dir in
  let base = Levels.wal_records levels in
  let state = ref (Levels.state levels) in
  Levels.close levels;
  List.iteri
    (fun i r ->
      if i >= base then
        match r with
        | Group_wal.Load (item, v) | Group_wal.Write (_, item, _, v) ->
            state := Levels.ItemMap.add item (Memtable.Value v) !state
        | Group_wal.Begin _ | Group_wal.Prepared _ | Group_wal.Committed _
        | Group_wal.Aborted _ -> ())
    records;
  let analysis = Group_wal.analyze records in
  Iset.iter
    (fun tid ->
      List.iter
        (fun r ->
          match r with
          | Group_wal.Write (owner, item, before, _) when owner = tid ->
              state := Levels.ItemMap.add item (Memtable.Value before) !state
          | _ -> ())
        (List.rev records))
    analysis.Group_wal.losers;
  Levels.ItemMap.fold
    (fun item e acc ->
      match e with
      | Memtable.Value v -> (item, v) :: acc
      | Memtable.Tombstone -> acc)
    !state []
  |> List.rev

type stats = {
  flushes : int;
  compactions : int;
  cache_hits : int;
  cache_misses : int;
  fsyncs : int;
  wal_records_total : int;
  wal_rotations : int;
  bytes_durable : int;
  l0_runs : int;
  l1_runs : int;
  memtable : int;
}

let stats t =
  let l0, l1 = Levels.runs t.levels in
  {
    flushes = Levels.flushes t.levels;
    compactions = Levels.compactions t.levels;
    cache_hits = Block_cache.hits (Levels.cache t.levels);
    cache_misses = Block_cache.misses (Levels.cache t.levels);
    fsyncs = Group_wal.fsyncs t.wal;
    wal_records_total = Group_wal.total_appended t.wal;
    wal_rotations = Group_wal.rotations t.wal;
    bytes_durable = Group_wal.durable_bytes t.wal;
    l0_runs = l0;
    l1_runs = l1;
    memtable = Memtable.length t.mem;
  }
