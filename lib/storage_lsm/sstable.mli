(** Immutable sorted runs on disk.

    Layout: data blocks (a [count]-prefixed entry array, each block closed
    by a CRC-32), then a sparse index (first key, offset, length per
    block, CRC-checked), then a fixed footer (index bounds, entry count,
    min/max key, its own CRC-32, magic). Reads go footer → index → one
    block; a sparse index over fixed-size blocks keeps the resident set
    proportional to the block count, not the entry count.

    Any checksum or framing mismatch raises {!Corrupt} — a run is either
    intact or rejected whole; there is no partial trust. *)

open Mdbs_model

exception Corrupt of string

type t

val write :
  path:string -> block_entries:int -> (Item.t * Memtable.entry) list -> unit
(** Write a run from sorted, deduplicated entries (tombstones included)
    and fsync it. Raises [Invalid_argument] on an empty run. *)

val open_file : id:int -> string -> t
(** Open a run, reading and verifying footer and index. [id] keys the
    block cache, so it must be unique per live run ({!Levels} assigns
    monotonic ids from the manifest). *)

val find :
  t -> block:(t -> int -> (Item.t * Memtable.entry) array) -> Item.t ->
  Memtable.entry option
(** Point lookup via the sparse index. [block] fetches a data block —
    {!Levels} passes the cache-mediated loader, tests can pass
    {!read_block} directly. *)

val read_block : t -> int -> (Item.t * Memtable.entry) array
(** Read and CRC-check one data block. *)

val read_all : t -> (Item.t * Memtable.entry) list
(** Every entry in key order, bypassing the cache — the compaction and
    state-fold read path. *)

val id : t -> int

val count : t -> int

val blocks : t -> int

val min_key : t -> Item.t

val max_key : t -> Item.t

val footer_size : int
(** Bytes of the fixed footer at the end of a run file (corruption
    tests address footer fields relative to the end). *)

val close : t -> unit
