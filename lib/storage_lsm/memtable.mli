(** Sorted in-memory write buffer — the mutable top of the LSM tree.

    Absorbs every write until the entry count crosses the engine's
    watermark, at which point {!Lsm} flushes it to an immutable L0
    {!Sstable} run and clears it. A delete is buffered as a {!Tombstone}
    so it can mask older on-disk versions until compaction drops both. *)

open Mdbs_model

type entry = Value of int | Tombstone

type t

val create : unit -> t

val put : t -> Item.t -> entry -> unit

val find : t -> Item.t -> entry option

val length : t -> int
(** Distinct items buffered — the flush watermark is in entries. *)

val entries : t -> (Item.t * entry) list
(** Sorted by item; the flush order. *)

val clear : t -> unit

val is_empty : t -> bool
