(** Group-commit write-ahead log: the durable, on-disk counterpart of the
    site's logical WAL ({!Mdbs_site.Wal}).

    Records are buffered in memory by {!append} and hit disk on {!sync} —
    one write plus one fsync covering every record buffered since the last
    sync. The service runtime calls {!sync} once per site-worker mailbox
    batch, so a single fsync certifies the commit points of all
    transactions that prepared or committed in that batch: group commit.
    The [lsm_fsync_batch_size] histogram records how many commit-point
    records each fsync covered.

    On disk each record is framed [len][payload][crc32]. Reads stop at the
    first bad frame (a torn tail from a crash mid-write) and the writer
    truncates to the clean prefix before appending — the unsynced suffix
    is exactly the bounded loss group commit permits. *)

open Mdbs_model

type record =
  | Load of Item.t * int
  | Begin of Types.tid
  | Write of Types.tid * Item.t * int * int  (** item, before, after. *)
  | Prepared of Types.tid
  | Committed of Types.tid
  | Aborted of Types.tid

val is_commit_point : record -> bool
(** [Prepared]/[Committed]/[Aborted] — the records whose durability a
    transaction's outcome acknowledgment depends on. *)

type t

val open_ : string -> t * record list
(** Open (creating if absent) the log at this path, returning the clean
    records already on disk. A torn tail is truncated away. *)

val append : t -> record -> unit
(** Buffer a record; durable only after the next {!sync}. *)

val sync : t -> unit
(** Write and fsync everything buffered (no-op when empty). *)

val appended : t -> int
(** Records in the current log (including any still buffered) — the
    manifest's coverage mark is measured against this count. Drops at
    each {!rotate}. *)

val total_appended : t -> int
(** Records ever appended across rotations, including those recovered at
    {!open_} — the monotonic counter behind [wal_records_total]. *)

val durable_bytes : t -> int
(** Bytes on disk covered by an fsync — the honest durability measure, as
    opposed to the logical record count. *)

val fsyncs : t -> int

val rotations : t -> int

val live_count : t -> int
(** Records belonging to transactions not yet resolved by a
    [Committed]/[Aborted] — what a {!rotate} would keep. *)

val rotate : t -> unit
(** Checkpoint the log: atomically rewrite it to just the unresolved
    transactions' records ({!live_count} of them). Only sound immediately
    after a manifest publish whose [wal_records] equals the pre-rotation
    {!live_count}: every dropped record is then reflected in the runs,
    and replaying the old log past that mark is idempotent if the crash
    lands before the rename. *)

val discard_pending : t -> unit
(** Drop the records buffered since the last {!sync} — the bounded loss a
    real power failure inflicts. Leaves the in-memory counters stale, so
    only call it immediately before abandoning the handle for a reopen. *)

val attach_metrics :
  t -> labels:(string * string) list -> Mdbs_obs.Metrics.t -> unit
(** Register [lsm_fsync_batch_size] and [lsm_fsync_ms] histograms. *)

val close : t -> unit
(** {!sync}, then release the descriptor. *)

val read_file : string -> record list * int
(** Decode a log image without opening it for append: the clean records
    and the clean byte count ([mdbs recover]'s read path). *)

type analysis = {
  committed : Mdbs_util.Iset.t;
  aborted : Mdbs_util.Iset.t;
  in_doubt : Mdbs_util.Iset.t;
  losers : Mdbs_util.Iset.t;
}

val analyze : record list -> analysis
(** Same classification as {!Mdbs_site.Wal.analyze}, over decoded disk
    records. *)

val ms_bounds : float array
(** Histogram bounds for sub-millisecond-to-50ms latencies, shared by the
    storage-tier timing instruments. *)
