open Mdbs_model
module Metrics = Mdbs_obs.Metrics

type slot = {
  data : (Item.t * Memtable.entry) array;
  mutable heat : int;
  mutable stamp : int;
}

type t = {
  cap : int;
  tbl : (int * int, slot) Hashtbl.t; (* (table id, block index) *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable m_hits : Metrics.counter;
  mutable m_misses : Metrics.counter;
}

let create ?(cap = 64) () =
  {
    cap = max 1 cap;
    tbl = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
    m_hits = Metrics.counter Metrics.null "lsm_cache_hits_total";
    m_misses = Metrics.counter Metrics.null "lsm_cache_misses_total";
  }

let attach_metrics t ~labels metrics =
  t.m_hits <- Metrics.counter metrics ~labels "lsm_cache_hits_total";
  t.m_misses <- Metrics.counter metrics ~labels "lsm_cache_misses_total"

(* Evict the coldest slot: minimal heat, oldest stamp as tie-break. A
   linear scan — the cache is block-grained and small (tens of slots), so
   a scan beats maintaining an ordered structure on every hit. *)
let evict_coldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !victim with
      | None -> victim := Some (key, slot)
      | Some (_, best) ->
          if
            slot.heat < best.heat
            || (slot.heat = best.heat && slot.stamp < best.stamp)
          then victim := Some (key, slot))
    t.tbl;
  match !victim with None -> () | Some (key, _) -> Hashtbl.remove t.tbl key

let find_or_load t key load =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.tbl key with
  | Some slot ->
      slot.heat <- slot.heat + 1;
      slot.stamp <- t.clock;
      t.hits <- t.hits + 1;
      Metrics.inc t.m_hits;
      slot.data
  | None ->
      let data = load () in
      t.misses <- t.misses + 1;
      Metrics.inc t.m_misses;
      if Hashtbl.length t.tbl >= t.cap then evict_coldest t;
      Hashtbl.replace t.tbl key { data; heat = 1; stamp = t.clock };
      data

let drop_table t table_id =
  let doomed =
    Hashtbl.fold
      (fun ((tid, _) as key) _ acc -> if tid = table_id then key :: acc else acc)
      t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) doomed

let hits t = t.hits

let misses t = t.misses

let length t = Hashtbl.length t.tbl
