open Mdbs_model
module Crc32 = Mdbs_util.Crc32
module Iset = Mdbs_util.Iset
module Metrics = Mdbs_obs.Metrics
module Stats = Mdbs_util.Stats

type record =
  | Load of Item.t * int
  | Begin of Types.tid
  | Write of Types.tid * Item.t * int * int
  | Prepared of Types.tid
  | Committed of Types.tid
  | Aborted of Types.tid

let is_commit_point = function
  | Prepared _ | Committed _ | Aborted _ -> true
  | Load _ | Begin _ | Write _ -> false

(* --- record framing ---------------------------------------------------- *)
(* [len:u32][payload][crc32(payload):u32]; payload = tag byte + fields. *)

let encode_payload buf = function
  | Load (item, v) ->
      Buffer.add_char buf '\000';
      Codec.add_item buf item;
      Codec.add_i64 buf v
  | Begin tid ->
      Buffer.add_char buf '\001';
      Codec.add_i64 buf tid
  | Write (tid, item, before, after) ->
      Buffer.add_char buf '\002';
      Codec.add_i64 buf tid;
      Codec.add_item buf item;
      Codec.add_i64 buf before;
      Codec.add_i64 buf after
  | Prepared tid ->
      Buffer.add_char buf '\003';
      Codec.add_i64 buf tid
  | Committed tid ->
      Buffer.add_char buf '\004';
      Codec.add_i64 buf tid
  | Aborted tid ->
      Buffer.add_char buf '\005';
      Codec.add_i64 buf tid

let encode buf r =
  let payload = Buffer.create 40 in
  encode_payload payload r;
  let p = Buffer.to_bytes payload in
  Codec.add_u32 buf (Bytes.length p);
  Buffer.add_bytes buf p;
  Codec.add_u32 buf (Crc32.digest_bytes p 0 (Bytes.length p))

let decode_payload b off len =
  let item_at o = Codec.get_item b o in
  let i64 o = Codec.get_i64 b o in
  match Char.code (Bytes.get b off) with
  | 0 when len = 18 -> Load (item_at (off + 1), i64 (off + 10))
  | 1 when len = 9 -> Begin (i64 (off + 1))
  | 2 when len = 34 ->
      Write (i64 (off + 1), item_at (off + 9), i64 (off + 18), i64 (off + 26))
  | 3 when len = 9 -> Prepared (i64 (off + 1))
  | 4 when len = 9 -> Committed (i64 (off + 1))
  | 5 when len = 9 -> Aborted (i64 (off + 1))
  | _ -> failwith "Group_wal: bad record payload"

(* Decode a whole log image. Stops at the first bad frame — a torn tail
   from a crash mid-write — and reports how many bytes were clean, so the
   writer can truncate before appending. *)
let decode_all b =
  let total = Bytes.length b in
  let records = ref [] in
  let off = ref 0 in
  let clean = ref 0 in
  (try
     while !off + 8 <= total do
       let len = Codec.get_u32 b !off in
       if len <= 0 || !off + 4 + len + 4 > total then raise Exit;
       let crc = Codec.get_u32 b (!off + 4 + len) in
       if Crc32.digest_bytes b (!off + 4) len <> crc then raise Exit;
       records := decode_payload b (!off + 4) len :: !records;
       off := !off + 4 + len + 4;
       clean := !off
     done
   with Exit | Failure _ -> ());
  (List.rev !records, !clean)

let read_file path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let b = Bytes.create len in
    really_input ic b 0 len;
    close_in ic;
    decode_all b
  end

(* --- the log ----------------------------------------------------------- *)

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  buf : Buffer.t; (* encoded records not yet written/fsynced *)
  mutable appended : int; (* records in the current log, incl. buffered *)
  mutable total : int; (* records ever appended, across rotations *)
  mutable pending_commit_points : int;
  mutable synced_bytes : int;
  mutable fsyncs : int;
  mutable rotations : int;
  live : (Types.tid, (int * record) list ref) Hashtbl.t;
      (* per unresolved transaction: its records (newest first), each
         tagged with its position in the current log — exactly what a
         checkpoint must carry forward. *)
  mutable h_batch : Stats.histogram;
  mutable h_fsync : Stats.histogram;
  mutable timed : bool;
}

(* Maintain the unresolved-transaction record set as the log grows. A
   [Load] is pure state — once a flush folds it into a run it is never
   needed again, so it is not retained. *)
let track_live t seq r =
  match r with
  | Load _ -> ()
  | Begin tid | Write (tid, _, _, _) | Prepared tid -> (
      match Hashtbl.find_opt t.live tid with
      | Some l -> l := (seq, r) :: !l
      | None -> Hashtbl.replace t.live tid (ref [ (seq, r) ]))
  | Committed tid | Aborted tid -> Hashtbl.remove t.live tid

let ms_bounds =
  [| 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50. |]

let batch_bounds = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]

let open_ path =
  (* A crash between writing and renaming a checkpoint leaves a stray
     tmp; the real log is authoritative. *)
  (try Sys.remove (path ^ ".tmp") with Sys_error _ -> ());
  let records, clean = read_file path in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.ftruncate fd clean;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let t =
    {
      path;
      fd;
      buf = Buffer.create 4096;
      appended = List.length records;
      total = List.length records;
      pending_commit_points = 0;
      synced_bytes = clean;
      fsyncs = 0;
      rotations = 0;
      live = Hashtbl.create 16;
      h_batch = Metrics.histogram Metrics.null "lsm_fsync_batch_size";
      h_fsync = Metrics.histogram Metrics.null "lsm_fsync_ms";
      timed = false;
    }
  in
  List.iteri (track_live t) records;
  (t, records)

let attach_metrics t ~labels metrics =
  t.h_batch <-
    Metrics.histogram metrics ~labels ~bounds:batch_bounds
      "lsm_fsync_batch_size";
  t.h_fsync <- Metrics.histogram metrics ~labels ~bounds:ms_bounds "lsm_fsync_ms";
  t.timed <- Metrics.enabled metrics

let append t r =
  encode t.buf r;
  track_live t t.appended r;
  t.appended <- t.appended + 1;
  t.total <- t.total + 1;
  if is_commit_point r then
    t.pending_commit_points <- t.pending_commit_points + 1

let sync t =
  if Buffer.length t.buf > 0 then begin
    let b = Buffer.to_bytes t.buf in
    Buffer.clear t.buf;
    Codec.write_fully t.fd b;
    let t0 = if t.timed then Unix.gettimeofday () else 0. in
    Unix.fsync t.fd;
    if t.timed then
      Metrics.observe t.h_fsync ((Unix.gettimeofday () -. t0) *. 1000.);
    t.fsyncs <- t.fsyncs + 1;
    if t.pending_commit_points > 0 then
      Metrics.observe t.h_batch (float_of_int t.pending_commit_points);
    t.pending_commit_points <- 0;
    t.synced_bytes <- t.synced_bytes + Bytes.length b
  end

let appended t = t.appended

let total_appended t = t.total

let durable_bytes t = t.synced_bytes

let fsyncs t = t.fsyncs

let rotations t = t.rotations

let live_count t = Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.live 0

(* Checkpoint: rewrite the log to just the unresolved transactions'
   records, in their original order. Callers invoke this right after a
   manifest publish that covers every current record — so everything
   dropped here is reconstructible from the runs, and everything kept is
   exactly what loser-undo and in-doubt analysis still need. The swap is
   atomic (tmp + rename + directory fsync); a crash at any point leaves
   either the old log (longer, replay is idempotent past the manifest's
   high-water mark) or the new one. *)
let rotate t =
  sync t;
  let kept =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun _ l acc -> !l @ acc) t.live [])
  in
  let out = Buffer.create 4096 in
  List.iter (fun (_, r) -> encode out r) kept;
  let b = Buffer.to_bytes out in
  let tmp = t.path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Codec.write_fully fd b;
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp t.path;
  let dfd = Unix.openfile (Filename.dirname t.path) [ Unix.O_RDONLY ] 0 in
  Unix.fsync dfd;
  Unix.close dfd;
  (* The old descriptor still names the replaced inode: reopen. *)
  Unix.close t.fd;
  let fd = Unix.openfile t.path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  t.fd <- fd;
  t.appended <- List.length kept;
  t.synced_bytes <- Bytes.length b;
  t.rotations <- t.rotations + 1;
  (* Renumber the kept records to their positions in the new log. *)
  Hashtbl.reset t.live;
  List.iteri (fun i (_, r) -> track_live t i r) kept

(* Simulate losing the unsynced group-commit window (power loss, not a
   clean restart): the buffered records never reach disk. The in-memory
   bookkeeping ([appended], [live]) is intentionally not rolled back —
   this is only sound immediately before discarding [t] for a reopen,
   which rebuilds both from the durable file. *)
let discard_pending t =
  Buffer.clear t.buf;
  t.pending_commit_points <- 0

let close t =
  sync t;
  Unix.close t.fd

(* --- recovery analysis -------------------------------------------------- *)
(* Mirrors the logical WAL's analyze (lib/site/wal.ml): both run the same
   redo-undo doctrine over the same record stream, one in memory and one
   from disk. *)

type analysis = {
  committed : Iset.t;
  aborted : Iset.t;
  in_doubt : Iset.t;
  losers : Iset.t;
}

let analyze records =
  let begun = ref Iset.empty in
  let committed = ref Iset.empty in
  let aborted = ref Iset.empty in
  let prepared = ref Iset.empty in
  List.iter
    (fun r ->
      match r with
      | Load _ -> ()
      | Begin tid -> begun := Iset.add tid !begun
      | Write (tid, _, _, _) -> begun := Iset.add tid !begun
      | Prepared tid -> prepared := Iset.add tid !prepared
      | Committed tid -> committed := Iset.add tid !committed
      | Aborted tid -> aborted := Iset.add tid !aborted)
    records;
  let resolved = Iset.union !committed !aborted in
  let in_doubt = Iset.diff !prepared resolved in
  let losers = Iset.diff (Iset.diff !begun resolved) in_doubt in
  { committed = !committed; aborted = !aborted; in_doubt; losers }
