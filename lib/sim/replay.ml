module Rng = Mdbs_util.Rng
module Engine = Mdbs_core.Engine
module Scheme = Mdbs_core.Scheme
module Queue_op = Mdbs_core.Queue_op

type spec = { gid : int; sites : int list }

type config = {
  m : int;
  n_txns : int;
  d_av : int;
  concurrency : int;
  ack_latency : int;
}

let default = { m = 8; n_txns = 64; d_av = 3; concurrency = 16; ack_latency = 2 }

type result = {
  scheme_name : string;
  txns : int;
  ser_waits : int;
  total_waits : int;
  submits : int;
  scheme_steps : int;
  engine_steps : int;
  total_steps : int;
  steps_per_txn : float;
  submissions : (int * int) list;
  aborts : int;
  aborted_gids : int list;
  trace : Mdbs_analysis.Trace.t;
  certified : bool;
}

(* Self-certification: rebuild the realized ser(S) as a static trace (no
   local schedules at this level) and discharge the Theorem-2 obligation. *)
let capture_trace specs submissions aborted_gids =
  let globals = List.map (fun spec -> (spec.gid, spec.sites)) specs in
  let ser_events =
    List.filter (fun (gid, _) -> not (List.mem gid aborted_gids)) submissions
  in
  Mdbs_analysis.Trace.make ~globals ~ser_events []

let certify trace =
  Mdbs_analysis.Certifier.is_certified
    (Mdbs_analysis.Certifier.certify_theorem2 trace)

type txn_state = {
  spec : spec;
  mutable init_done : bool;
  mutable remaining : int list;
  mutable awaiting : bool;
  mutable acked : int;
  mutable fin_done : bool;
  mutable aborted : bool;
}

let generate_specs rng config =
  let d = min config.d_av config.m in
  List.init config.n_txns (fun i ->
      { gid = i + 1; sites = Rng.sample_distinct rng d config.m })

let run_specs ?(seed = 42) ~concurrency ~ack_latency specs scheme =
  let rng = Rng.create seed in
  let engine = Engine.create scheme in
  let submits = ref 0 in
  let submissions = ref [] in
  let delayed = ref [] in
  let states = Hashtbl.create 64 in
  List.iter
    (fun spec ->
      Hashtbl.replace states spec.gid
        {
          spec;
          init_done = false;
          remaining = spec.sites;
          awaiting = false;
          acked = 0;
          fin_done = false;
          aborted = false;
        })
    specs;
  let handle_effect effect =
    match effect with
    | Scheme.Submit_ser (gid, site) ->
        incr submits;
        submissions := (gid, site) :: !submissions;
        delayed := (ack_latency, gid, site) :: !delayed
    | Scheme.Forward_ack (gid, _) ->
        let st = Hashtbl.find states gid in
        st.awaiting <- false;
        st.acked <- st.acked + 1
    | Scheme.Abort_global gid ->
        (* Non-conservative scheme: the transaction dies; GTM1 skips its
           remaining operations and finishes it. *)
        let st = Hashtbl.find states gid in
        st.aborted <- true;
        st.awaiting <- false;
        st.remaining <- []
  in
  (* Process the engine to a fixpoint: acts may enqueue zero-latency acks. *)
  let rec settle () =
    let effects = Engine.run engine in
    if effects <> [] then begin
      List.iter handle_effect effects;
      let ready, still =
        List.partition (fun (countdown, _, _) -> countdown <= 0) !delayed
      in
      delayed := still;
      if ready <> [] then begin
        List.iter
          (fun (_, gid, site) -> Engine.enqueue engine (Queue_op.Ack (gid, site)))
          (List.rev ready);
        settle ()
      end
      else if not (Engine.idle engine) then settle ()
    end
  in
  let tick () =
    let ready, still =
      List.fold_left
        (fun (ready, still) (countdown, gid, site) ->
          if countdown <= 1 then ((gid, site) :: ready, still)
          else (ready, (countdown - 1, gid, site) :: still))
        ([], []) !delayed
    in
    delayed := still;
    List.iter
      (fun (gid, site) -> Engine.enqueue engine (Queue_op.Ack (gid, site)))
      (List.rev ready);
    if ready <> [] then settle ()
  in
  let backlog = ref specs in
  let active = ref [] in
  let admit () =
    while List.length !active < concurrency && !backlog <> [] do
      match !backlog with
      | spec :: rest ->
          backlog := rest;
          active := !active @ [ Hashtbl.find states spec.gid ]
      | [] -> ()
    done
  in
  let insertion_for st =
    if st.aborted && st.init_done && not st.fin_done then
      Some
        (fun () ->
          st.fin_done <- true;
          Engine.enqueue engine (Queue_op.Fin st.spec.gid))
    else if not st.init_done then
      Some
        (fun () ->
          st.init_done <- true;
          Engine.enqueue engine
            (Queue_op.Init { Queue_op.gid = st.spec.gid; ser_sites = st.spec.sites }))
    else if st.awaiting then None
    else
      match st.remaining with
      | site :: rest ->
          Some
            (fun () ->
              st.remaining <- rest;
              st.awaiting <- true;
              Engine.enqueue engine (Queue_op.Ser (st.spec.gid, site)))
      | [] ->
          if st.acked = List.length st.spec.sites && not st.fin_done then
            Some
              (fun () ->
                st.fin_done <- true;
                Engine.enqueue engine (Queue_op.Fin st.spec.gid))
          else None
  in
  let stuck_rounds = ref 0 in
  let finished () = List.for_all (fun st -> st.fin_done) !active && !backlog = [] in
  while not (finished ()) do
    admit ();
    tick ();
    let choices =
      List.filter_map
        (fun st ->
          match insertion_for st with Some f -> Some (st, f) | None -> None)
        !active
    in
    (match choices with
    | [] ->
        if !delayed = [] then begin
          incr stuck_rounds;
          if !stuck_rounds > 3 then
            failwith
              (Printf.sprintf "Replay: scheme %s is stuck (wait set: %d)"
                 scheme.Scheme.name (Engine.wait_size engine))
        end
    | _ ->
        stuck_rounds := 0;
        let _, insert = List.nth choices (Rng.int rng (List.length choices)) in
        insert ();
        settle ());
    active := List.filter (fun st -> not st.fin_done) !active
  done;
  (* Let trailing acknowledgements drain. *)
  while !delayed <> [] do
    tick ()
  done;
  settle ();
  let n = List.length specs in
  let submissions = List.rev !submissions in
  let aborted_gids =
    Hashtbl.fold (fun gid st acc -> if st.aborted then gid :: acc else acc) states []
  in
  let trace = capture_trace specs submissions aborted_gids in
  {
    scheme_name = scheme.Scheme.name;
    txns = n;
    ser_waits = Engine.ser_wait_insertions engine;
    total_waits = Engine.total_wait_insertions engine;
    submits = !submits;
    scheme_steps = scheme.Scheme.steps ();
    engine_steps = Engine.engine_steps engine;
    total_steps = Engine.total_steps engine;
    steps_per_txn = float_of_int (Engine.total_steps engine) /. float_of_int (max 1 n);
    submissions;
    aborts = List.length aborted_gids;
    aborted_gids;
    trace;
    certified = certify trace;
  }

let run ?(seed = 42) config scheme =
  let rng = Rng.create (seed * 7919) in
  let specs = generate_specs rng config in
  run_specs ~seed ~concurrency:config.concurrency ~ack_latency:config.ack_latency
    specs scheme

(* Open-loop arrival sequence: every transaction's init followed by its ser
   operations in program order, interleaved across a sliding window of
   [concurrency] transactions. Depends only on the seed and the config. *)
let fixed_sequence rng config specs =
  let cursors =
    List.map (fun spec -> (spec, ref (None :: List.map (fun s -> Some s) spec.sites))) specs
  in
  let window = ref [] and backlog = ref cursors and sequence = ref [] in
  let refill () =
    while List.length !window < config.concurrency && !backlog <> [] do
      match !backlog with
      | entry :: rest ->
          backlog := rest;
          window := !window @ [ entry ]
      | [] -> ()
    done
  in
  refill ();
  while !window <> [] do
    let index = Rng.int rng (List.length !window) in
    let ((spec, cursor) as entry) = List.nth !window index in
    (match !cursor with
    | [] -> assert false
    | next :: rest ->
        cursor := rest;
        let op =
          match next with
          | None -> Queue_op.Init { Queue_op.gid = spec.gid; ser_sites = spec.sites }
          | Some site -> Queue_op.Ser (spec.gid, site)
        in
        sequence := op :: !sequence);
    if !cursor = [] then window := List.filter (fun e -> e != entry) !window;
    refill ()
  done;
  List.rev !sequence

let run_fixed ?(seed = 42) config scheme =
  let spec_rng = Rng.create (seed * 7919) in
  let specs = generate_specs spec_rng config in
  let order_rng = Rng.create (seed * 104729) in
  let sequence = fixed_sequence order_rng config specs in
  let engine = Engine.create scheme in
  let submits = ref 0 in
  let submissions = ref [] in
  let acked = Hashtbl.create 64 in
  let fin_done = Hashtbl.create 64 in
  let aborted = Hashtbl.create 16 in
  let expected = Hashtbl.create 64 in
  List.iter
    (fun spec -> Hashtbl.replace expected spec.gid (List.length spec.sites))
    specs;
  let pending_acks = Queue.create () in
  let handle_effect effect =
    match effect with
    | Scheme.Submit_ser (gid, site) ->
        incr submits;
        submissions := (gid, site) :: !submissions;
        Queue.add (gid, site) pending_acks
    | Scheme.Forward_ack (gid, _) ->
        Hashtbl.replace acked gid
          (1 + (match Hashtbl.find_opt acked gid with Some n -> n | None -> 0))
    | Scheme.Abort_global gid -> Hashtbl.replace aborted gid ()
  in
  let rec settle () =
    let effects = Engine.run engine in
    List.iter handle_effect effects;
    let enqueued = ref false in
    while not (Queue.is_empty pending_acks) do
      let gid, site = Queue.pop pending_acks in
      Engine.enqueue engine (Queue_op.Ack (gid, site));
      enqueued := true
    done;
    (* A transaction whose serialization operations are all acknowledged
       finishes immediately. *)
    Hashtbl.iter
      (fun gid count ->
        if count = Hashtbl.find expected gid && not (Hashtbl.mem fin_done gid)
        then begin
          Hashtbl.replace fin_done gid ();
          Engine.enqueue engine (Queue_op.Fin gid);
          enqueued := true
        end)
      acked;
    if !enqueued then settle ()
  in
  List.iter
    (fun op ->
      Engine.enqueue engine op;
      settle ())
    sequence;
  settle ();
  let n = List.length specs in
  let submissions = List.rev !submissions in
  let aborted_gids = Hashtbl.fold (fun gid () acc -> gid :: acc) aborted [] in
  let trace = capture_trace specs submissions aborted_gids in
  {
    scheme_name = scheme.Scheme.name;
    txns = n;
    ser_waits = Engine.ser_wait_insertions engine;
    total_waits = Engine.total_wait_insertions engine;
    submits = !submits;
    scheme_steps = scheme.Scheme.steps ();
    engine_steps = Engine.engine_steps engine;
    total_steps = Engine.total_steps engine;
    steps_per_txn = float_of_int (Engine.total_steps engine) /. float_of_int (max 1 n);
    submissions;
    aborts = Hashtbl.length aborted;
    aborted_gids;
    trace;
    certified = certify trace;
  }
