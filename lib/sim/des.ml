open Mdbs_model
module Rng = Mdbs_util.Rng
module Binary_heap = Mdbs_util.Binary_heap
module Stats = Mdbs_util.Stats
module Engine = Mdbs_core.Engine
module Scheme = Mdbs_core.Scheme
module Queue_op = Mdbs_core.Queue_op
module Gtm1 = Mdbs_core.Gtm1
module Gtm_log = Mdbs_core.Gtm_log
module Registry = Mdbs_core.Registry
module Local_dbms = Mdbs_site.Local_dbms
module Cc_types = Mdbs_lcc.Cc_types
module Json = Mdbs_analysis.Json
module Obs = Mdbs_obs.Obs
module Sink = Mdbs_obs.Sink
module Metrics = Mdbs_obs.Metrics

type config = {
  workload : Workload.config;
  n_global : int;
  global_rate : float;
  locals_per_site : int;
  local_rate : float;
  service_ms : float;
  latency_ms : float;
  deadlock_timeout_ms : float;
  max_restarts : int;
  seed : int;
  atomic_commit : bool;
  faults : Fault.t;
  retry_timeout_ms : float;
  max_retries : int;
  obs : Obs.t;
}

let default =
  {
    workload = Workload.default;
    n_global = 60;
    global_rate = 0.05;
    locals_per_site = 20;
    local_rate = 0.05;
    service_ms = 1.0;
    latency_ms = 2.0;
    deadlock_timeout_ms = 200.0;
    max_restarts = 10;
    seed = 23;
    atomic_commit = false;
    faults = Fault.none;
    retry_timeout_ms = 50.0;
    max_retries = 6;
    obs = Obs.disabled;
  }

type result = {
  scheme_name : string;
  committed_global : int;
  failed_global : int;
  restarts : int;
  committed_local : int;
  aborted_local : int;
  forced_aborts : int;
  ser_waits : int;
  makespan_ms : float;
  throughput_per_s : float;
  mean_response_ms : float;
  p95_response_ms : float;
  serializable : bool;
  ser_s_serializable : bool;
  races : int;
  site_crashes : int;
  gtm_recoveries : int;
  msg_drops : int;
  msg_dups : int;
  retries : int;
  in_doubt_resolved : int;
}

type run = {
  result : result;
  trace : Mdbs_analysis.Trace.t;
  sites : Local_dbms.t list;
  attempts : Txn.t list;  (* admission order *)
  obs : Obs.t;  (* the config's bundle, filled by the run *)
}

type op_kind = Ser_op | Direct_op

type event =
  | Global_arrival of Txn.t * int * float
      (* transaction, restart budget, logical start time *)
  | Local_arrival of Types.sid * Txn.t * int
  | Site_deliver of Types.sid * Types.tid * int * Op.action * op_kind
      (* operation [pc] of a global transaction reaches its site *)
  | Site_abort of Types.sid * Types.gid (* rollback order reaches the site *)
  | Local_step of Types.sid * Types.tid * Op.action list
  | Gtm_ser_ack of Types.gid * int * Types.sid * string option
  | Gtm_direct_ack of Types.gid * int * string option
  | Deadlock_scan
  | Fault_event of Fault.fault
  | Retry_check of Types.gid * int * int (* gid, pc, attempt *)
  | Recovery_commit of Types.sid * Types.gid
      (* a recovered GTM completes a logged Commit decision at a site *)

type sim = {
  config : config;
  mutable engine : Engine.t; (* volatile: replaced at a GTM crash *)
  mutable gtm1 : Gtm1.t; (* volatile: replaced at a GTM crash *)
  make_scheme : unit -> Scheme.t; (* fresh scheme for a restarted GTM *)
  gtm_log : Gtm_log.t; (* the GTM's stable storage *)
  site_tbl : (Types.sid, Local_dbms.t) Hashtbl.t;
  heap : (float * int * event) Binary_heap.t;
  mutable seq : int;
  mutable clock : float;
  mutable last_commit : float;
  rng : Rng.t;
  faults_enabled : bool;
  link_rng : Rng.t; (* dedicated stream: link faults are plan-deterministic *)
  ser_log : Ser_schedule.t;
  (* blocked operations at sites: value = (kind, pc, block start time) *)
  pending_global : (Types.sid * Types.gid, op_kind * int * float) Hashtbl.t;
  local_cont : (Types.tid, Types.sid * Op.action list * float) Hashtbl.t;
  started : (Types.gid, float) Hashtbl.t; (* logical start per attempt *)
  fin_enqueued : (Types.gid, unit) Hashtbl.t;
  death_reason : (Types.gid, string) Hashtbl.t;
  budgets : (Types.gid, Txn.t * int) Hashtbl.t;
  (* the operation the GTM is waiting on, per transaction: acknowledgements
     and retries for any other (stale, duplicated) operation are ignored *)
  outstanding : (Types.gid, int) Hashtbl.t;
  (* per-site memory of executed operations (volatile, dies with the site):
     a redelivered operation is re-acknowledged from here, never re-run *)
  dedup : (Types.sid * Types.gid * int, string option) Hashtbl.t;
  decided : (Types.gid, Gtm_log.decision) Hashtbl.t;
  slow : (Types.sid, float * float) Hashtbl.t; (* factor, until *)
  dead_local : (Types.tid, unit) Hashtbl.t; (* locals killed by a site crash *)
  live_local_at : (Types.tid, Types.sid) Hashtbl.t;
  mutable committed_global : int;
  mutable failed_global : int;
  mutable restarts : int;
  mutable committed_local : int;
  mutable aborted_local : int;
  mutable forced_aborts : int;
  mutable ser_waits : int; (* accumulated across GTM incarnations *)
  mutable responses : float list;
  mutable live_globals : int; (* logical transactions not yet resolved *)
  mutable live_locals : int;
  mutable global_attempts : Txn.t list;
  mutable site_crashes : int;
  mutable gtm_recoveries : int;
  mutable msg_drops : int;
  mutable msg_dups : int;
  mutable retries : int;
  mutable in_doubt_resolved : int;
  obs : Obs.t;
  (* open spans, keyed by what closes them: the admission-to-resolution
     span per attempt, the dispatch-to-ack span per in-flight operation
     (GTM1 is strictly sequential per transaction, so at most one), and the
     site-blocked span per pending_global entry *)
  txn_spans : (Types.gid, int) Hashtbl.t;
  op_spans : (Types.gid, int * float) Hashtbl.t; (* span, dispatch time *)
  blocked_spans : (Types.sid * Types.gid, int) Hashtbl.t;
  prepared_at : (Types.sid * Types.gid, float) Hashtbl.t;
  m_abort_causes : (string, Metrics.counter) Hashtbl.t;
  m_ser_latency : Mdbs_util.Stats.histogram;
  m_response : Mdbs_util.Stats.histogram;
  m_in_doubt : Mdbs_util.Stats.histogram;
  net_track : int; (* link-fault instants live here *)
  gtm_track : int;
}

let schedule sim delay event =
  sim.seq <- sim.seq + 1;
  Binary_heap.push sim.heap (sim.clock +. delay, sim.seq, event)

let site sim sid = Hashtbl.find sim.site_tbl sid

(* --- observability helpers --------------------------------------------- *)

let tracing sim = Sink.enabled sim.obs.Obs.sink

(* Coarse cause bucket for the aborts-by-cause counter. *)
let abort_cause reason =
  if String.length reason >= 7 && String.sub reason 0 7 = "ticket:" then
    "ticket-conflict"
  else
    match reason with
    | "wait-die" | "deadlock" | "c2pl-deadlock" -> "deadlock"
    | "global-deadlock" -> "deadlock-timeout"
    | "sgt-cycle" | "gtm2-abort" -> "cycle"
    | "occ-validation" | "to-late-read" | "to-late-write" | "to-late-update" ->
        "validation"
    | "site-crash" | "site-amnesia" | "retry-exhausted" | "gtm-crash" -> "fault"
    | _ -> "other"

let count_abort sim reason =
  if sim.obs.Obs.live then begin
    let cause = abort_cause reason in
    let c =
      match Hashtbl.find_opt sim.m_abort_causes cause with
      | Some c -> c
      | None ->
          let c =
            Metrics.counter sim.obs.Obs.metrics
              ~labels:[ ("cause", cause) ]
              "des_aborts_total"
          in
          Hashtbl.replace sim.m_abort_causes cause c;
          c
    in
    Metrics.inc c
  end

let end_blocked_span sim key ~outcome =
  match Hashtbl.find_opt sim.blocked_spans key with
  | Some span ->
      Hashtbl.remove sim.blocked_spans key;
      Sink.end_span sim.obs.Obs.sink ~attrs:[ ("outcome", outcome) ] span
  | None -> ()

(* Close the dispatch-to-ack span; returns the dispatch time (for the
   ser-latency histogram). *)
let end_op_span sim gid ~outcome =
  match Hashtbl.find_opt sim.op_spans gid with
  | Some (span, t0) ->
      Hashtbl.remove sim.op_spans gid;
      Sink.end_span sim.obs.Obs.sink ~attrs:[ ("outcome", outcome) ] span;
      Some t0
  | None -> None

let end_txn_span sim gid ~outcome =
  match Hashtbl.find_opt sim.txn_spans gid with
  | Some span ->
      Hashtbl.remove sim.txn_spans gid;
      (* Close any children still open (deepest first) so the per-track
         close order stays LIFO even on abort/crash paths. *)
      let blocked =
        Hashtbl.fold
          (fun ((_, g) as key) _ acc -> if g = gid then key :: acc else acc)
          sim.blocked_spans []
      in
      List.iter (fun key -> end_blocked_span sim key ~outcome) blocked;
      ignore (end_op_span sim gid ~outcome);
      Sink.end_span sim.obs.Obs.sink ~attrs:[ ("outcome", outcome) ] span
  | None -> ()

let note_prepared sim sid gid =
  if sim.obs.Obs.live then Hashtbl.replace sim.prepared_at (sid, gid) sim.clock

(* The coordinator's verdict reached a prepared participant: the in-doubt
   window at this site closes. *)
let resolve_prepared sim sid gid =
  match Hashtbl.find_opt sim.prepared_at (sid, gid) with
  | Some t0 ->
      Hashtbl.remove sim.prepared_at (sid, gid);
      Metrics.observe sim.m_in_doubt (sim.clock -. t0)
  | None -> ()

let service sim = Rng.exponential sim.rng (1.0 /. sim.config.service_ms)

(* Service time at a site, stretched while a slowdown fault is active. *)
let service_at sim sid =
  let s = service sim in
  if sim.faults_enabled then
    match Hashtbl.find_opt sim.slow sid with
    | Some (factor, until) when sim.clock < until -> s *. factor
    | _ -> s
  else s

let log_decided sim gid d =
  if not (Hashtbl.mem sim.decided gid) then begin
    Hashtbl.replace sim.decided gid d;
    Gtm_log.append sim.gtm_log (Gtm_log.Decided (gid, d));
    if tracing sim then
      Sink.instant sim.obs.Obs.sink
        ~track:(Sink.txn_track sim.obs.Obs.sink gid)
        ~attrs:
          [
            ( "decision",
              match d with Gtm_log.Commit -> "commit" | Gtm_log.Abort -> "abort"
            );
          ]
        "2pc.decision"
  end

let commit_decided sim gid =
  Hashtbl.find_opt sim.decided gid = Some Gtm_log.Commit

(* --- the faulty transport --------------------------------------------- *)

let flip sim p = p > 0.0 && Rng.float sim.link_rng 1.0 < p

(* One-way GTM<->site latency, possibly fault-delayed. *)
let link_delay sim =
  let link = sim.config.faults.Fault.link in
  if sim.faults_enabled && flip sim link.Fault.delay then
    sim.config.latency_ms +. link.Fault.delay_ms
  else sim.config.latency_ms

(* Send a message over a GTM<->site link: in fault mode it may be dropped,
   duplicated or delayed (coin flips from the dedicated link stream). *)
let send_link sim ~extra event =
  if not sim.faults_enabled then schedule sim (extra +. sim.config.latency_ms) event
  else begin
    let link = sim.config.faults.Fault.link in
    let dropped = flip sim link.Fault.drop in
    let dup = flip sim link.Fault.duplicate in
    if dropped then begin
      sim.msg_drops <- sim.msg_drops + 1;
      Sink.instant sim.obs.Obs.sink ~track:sim.net_track "msg.drop"
    end
    else schedule sim (extra +. link_delay sim) event;
    if dup then begin
      sim.msg_dups <- sim.msg_dups + 1;
      Sink.instant sim.obs.Obs.sink ~track:sim.net_track "msg.dup";
      schedule sim (extra +. link_delay sim) event
    end
  end

(* Capped exponential backoff for the GTM's retry timer. *)
let backoff sim attempt =
  let d = sim.config.retry_timeout_ms *. (2.0 ** float_of_int attempt) in
  Float.min d (8.0 *. sim.config.retry_timeout_ms)

(* Dispatch operation [pc] of [gid] to its site. The operation id (gid, pc)
   makes delivery idempotent: the site caches the outcome per id, and the
   GTM accepts only the acknowledgement it is waiting on. *)
let send_to_site sim sid gid pc action kind ~attempt =
  Hashtbl.replace sim.outstanding gid pc;
  send_link sim ~extra:0.0 (Site_deliver (sid, gid, pc, action, kind));
  if sim.faults_enabled then
    schedule sim (backoff sim attempt) (Retry_check (gid, pc, attempt))

(* Acknowledge operation [pc] back to the GTM (also a faulty link). *)
let ack_to_gtm sim sid gid pc kind failure ~extra =
  match kind with
  | Ser_op -> send_link sim ~extra (Gtm_ser_ack (gid, pc, sid, failure))
  | Direct_op -> send_link sim ~extra (Gtm_direct_ack (gid, pc, failure))

let declare_if_needed sim gid sid action =
  if action = Op.Begin then begin
    let dbms = site sim sid in
    if Local_dbms.needs_declarations dbms then
      Local_dbms.declare dbms gid
        (List.map
           (fun (item, write) ->
             (item, if write then Cc_types.Write_mode else Cc_types.Read_mode))
           (Gtm1.declaration_for sim.gtm1 gid sid))
  end

(* The GTM learns of a subtransaction failure: kill the transaction and
   order rollbacks at every site where it is still active. A transaction
   whose Commit decision is already on stable storage can no longer be
   aborted (2PC: the decision is final); its commits are retried instead. *)
let mark_dead sim gid reason ~aborting_site =
  if
    Gtm1.is_known sim.gtm1 gid
    && (not (Gtm1.is_dead sim.gtm1 gid))
    && not (commit_decided sim gid)
  then begin
    Gtm1.mark_dead sim.gtm1 gid;
    count_abort sim reason;
    log_decided sim gid Gtm_log.Abort;
    Hashtbl.replace sim.death_reason gid reason;
    (match aborting_site with
    | Some s -> Gtm1.note_site_terminated sim.gtm1 gid s
    | None -> ());
    List.iter
      (fun s ->
        schedule sim sim.config.latency_ms (Site_abort (s, gid));
        Gtm1.note_site_terminated sim.gtm1 gid s)
      (Gtm1.begun_sites sim.gtm1 gid)
  end

(* The GTM accepts the acknowledgement of step [pc] — once. Stale
   acknowledgements (a duplicate, or a message that outlived a retry or a
   GTM restart) fail the [outstanding] check and die here. *)
let gtm_accept_ack sim gid pc sid kind failure =
  if
    Gtm1.is_known sim.gtm1 gid
    && Hashtbl.find_opt sim.outstanding gid = Some pc
  then begin
    Hashtbl.remove sim.outstanding gid;
    Gtm_log.append sim.gtm_log (Gtm_log.Acked (gid, pc));
    (match failure with
    | Some reason ->
        mark_dead sim gid reason
          ~aborting_site:(match kind with Ser_op -> Some sid | Direct_op -> None)
    | None -> ());
    match kind with
    | Ser_op -> Engine.enqueue sim.engine (Queue_op.Ack (gid, sid))
    | Direct_op ->
        ignore
          (end_op_span sim gid
             ~outcome:(match failure with None -> "acked" | Some r -> r));
        if Gtm1.is_known sim.gtm1 gid then Gtm1.on_ack sim.gtm1 gid
  end

(* Process completions that a site event may have unblocked. *)
let drain_site sim sid =
  List.iter
    (fun completion ->
      let tid = completion.Local_dbms.tid in
      match Hashtbl.find_opt sim.pending_global (sid, tid) with
      | Some (kind, pc, _) ->
          Hashtbl.remove sim.pending_global (sid, tid);
          end_blocked_span sim (sid, tid) ~outcome:"completed";
          if sim.faults_enabled then Hashtbl.replace sim.dedup (sid, tid, pc) None;
          (match kind with
          | Ser_op -> Ser_schedule.record sim.ser_log sid tid
          | Direct_op -> ());
          ack_to_gtm sim sid tid pc kind None ~extra:(service_at sim sid)
      | None -> (
          match Hashtbl.find_opt sim.local_cont tid with
          | Some (cont_sid, rest, _) ->
              Hashtbl.remove sim.local_cont tid;
              schedule sim (service_at sim cont_sid) (Local_step (cont_sid, tid, rest))
          | None -> ()))
    (Local_dbms.drain_completions (site sim sid))

(* Drive every admitted global transaction that is not in flight: dispatch
   its next operation into the (simulated) network, or finish it. *)
let rec drive sim =
  let effects = Engine.run sim.engine in
  List.iter
    (fun effect ->
      match effect with
      | Scheme.Submit_ser (gid, sid) ->
          if Gtm1.is_dead sim.gtm1 gid then
            (* Nothing to run at the site: acknowledge internally. *)
            Engine.enqueue sim.engine (Queue_op.Ack (gid, sid))
          else begin
            let action =
              match Gtm1.current_step sim.gtm1 gid with
              | Some step when step.Gtm1.site = sid && step.Gtm1.via_gtm2 ->
                  step.Gtm1.action
              | Some _ | None -> invalid_arg "Des: Submit_ser mismatch"
            in
            (* 2PC decision record: first commit leaves only after every
               prepare was acknowledged. *)
            if action = Op.Commit then log_decided sim gid Gtm_log.Commit;
            send_to_site sim sid gid (Gtm1.pc sim.gtm1 gid) action Ser_op
              ~attempt:0
          end
      | Scheme.Forward_ack (gid, _) ->
          (match end_op_span sim gid ~outcome:"acked" with
          | Some t0 when sim.obs.Obs.live ->
              Metrics.observe sim.m_ser_latency (sim.clock -. t0)
          | Some _ | None -> ());
          if Gtm1.is_known sim.gtm1 gid then Gtm1.on_ack sim.gtm1 gid
      | Scheme.Abort_global gid ->
          ignore (end_op_span sim gid ~outcome:"gtm2-abort");
          mark_dead sim gid "gtm2-abort" ~aborting_site:None;
          if Gtm1.is_known sim.gtm1 gid then Gtm1.on_ack sim.gtm1 gid)
    effects;
  let dispatched = ref false in
  List.iter
    (fun gid ->
      match Gtm1.next sim.gtm1 gid with
      | Gtm1.In_flight -> ()
      | Gtm1.Finished -> if finish_global sim gid then dispatched := true
      | Gtm1.Dispatch_ser sid ->
          Gtm_log.append sim.gtm_log (Gtm_log.Dispatched (gid, Gtm1.pc sim.gtm1 gid));
          Gtm1.note_dispatched sim.gtm1 gid;
          (if sim.obs.Obs.live then
             let span =
               if tracing sim then
                 Sink.begin_span sim.obs.Obs.sink
                   ~track:(Sink.txn_track sim.obs.Obs.sink gid)
                   ~attrs:[ ("site", string_of_int sid) ]
                   "ser"
               else 0
             in
             Hashtbl.replace sim.op_spans gid (span, sim.clock));
          Engine.enqueue sim.engine (Queue_op.Ser (gid, sid));
          dispatched := true
      | Gtm1.Dispatch_direct step ->
          let pc = Gtm1.pc sim.gtm1 gid in
          Gtm_log.append sim.gtm_log (Gtm_log.Dispatched (gid, pc));
          if step.Gtm1.action = Op.Commit && not (Gtm1.is_dead sim.gtm1 gid) then
            log_decided sim gid Gtm_log.Commit;
          Gtm1.note_dispatched sim.gtm1 gid;
          (if sim.obs.Obs.live then
             let span =
               if tracing sim then
                 Sink.begin_span sim.obs.Obs.sink
                   ~track:(Sink.txn_track sim.obs.Obs.sink gid)
                   ~attrs:
                     [
                       ("action", Op.action_to_string step.Gtm1.action);
                       ("site", string_of_int step.Gtm1.site);
                     ]
                   "op"
               else 0
             in
             Hashtbl.replace sim.op_spans gid (span, sim.clock));
          send_to_site sim step.Gtm1.site gid pc step.Gtm1.action Direct_op
            ~attempt:0;
          dispatched := true)
    (Gtm1.active sim.gtm1);
  if !dispatched || not (Engine.idle sim.engine) then drive sim

and finish_global sim gid =
  if Hashtbl.mem sim.fin_enqueued gid then false
  else begin
    Hashtbl.replace sim.fin_enqueued gid ();
    Engine.enqueue sim.engine (Queue_op.Fin gid);
    let started = Hashtbl.find sim.started gid in
    (if Gtm1.is_dead sim.gtm1 gid then begin
       let reason =
         match Hashtbl.find_opt sim.death_reason gid with
         | Some r -> r
         | None -> "aborted"
       in
       let txn, budget = Hashtbl.find sim.budgets gid in
       if budget > 0 then begin
         sim.restarts <- sim.restarts + 1;
         end_txn_span sim gid ~outcome:("restart:" ^ reason);
         let clone = { txn with Txn.id = Types.fresh_tid () } in
         (* Back off a little before retrying. *)
         schedule sim (2.0 *. sim.config.latency_ms)
           (Global_arrival (clone, budget - 1, started))
       end
       else begin
         sim.failed_global <- sim.failed_global + 1;
         sim.live_globals <- sim.live_globals - 1;
         end_txn_span sim gid ~outcome:("failed:" ^ reason)
       end
     end
     else begin
       log_decided sim gid Gtm_log.Commit;
       sim.committed_global <- sim.committed_global + 1;
       sim.live_globals <- sim.live_globals - 1;
       sim.last_commit <- sim.clock;
       sim.responses <- (sim.clock -. started) :: sim.responses;
       if sim.obs.Obs.live then
         Metrics.observe sim.m_response (sim.clock -. started);
       end_txn_span sim gid ~outcome:"committed"
     end);
    Gtm_log.append sim.gtm_log (Gtm_log.Finished gid);
    Hashtbl.remove sim.budgets gid;
    Gtm1.finish sim.gtm1 gid;
    true
  end

let admit_global sim txn budget started =
  let ser_point_of sid =
    let dbms = site sim sid in
    if sim.config.atomic_commit then
      Ser_fun.for_protocol_atomic (Local_dbms.protocol_kind dbms)
    else Local_dbms.serialization_point dbms
  in
  let info =
    Gtm1.admit sim.gtm1 txn ~atomic:sim.config.atomic_commit ~ser_point_of ()
  in
  Gtm_log.append sim.gtm_log (Gtm_log.Admitted (txn, sim.config.atomic_commit));
  sim.global_attempts <- txn :: sim.global_attempts;
  Hashtbl.replace sim.started txn.Txn.id started;
  Hashtbl.replace sim.budgets txn.Txn.id (txn, budget);
  if tracing sim then
    Hashtbl.replace sim.txn_spans txn.Txn.id
      (Sink.begin_span sim.obs.Obs.sink
         ~track:(Sink.txn_track sim.obs.Obs.sink txn.Txn.id)
         ~attrs:
           [
             ( "sites",
               String.concat "," (List.map string_of_int (Txn.sites txn)) );
             ("budget", string_of_int budget);
           ]
         "txn");
  Engine.enqueue sim.engine (Queue_op.Init info)

let handle_site_deliver sim sid tid pc action kind =
  if not (Gtm1.is_known sim.gtm1 tid) then ()
  else if Gtm1.is_dead sim.gtm1 tid then begin
    (* The rollback raced this operation; acknowledge without executing. *)
    match kind with
    | Ser_op -> gtm_accept_ack sim tid pc sid Ser_op None
    | Direct_op -> send_link sim ~extra:0.0 (Gtm_direct_ack (tid, pc, None))
  end
  else begin
    let dbms = site sim sid in
    if sim.faults_enabled && Hashtbl.mem sim.dedup (sid, tid, pc) then
      (* Redelivery of an executed operation: re-acknowledge the cached
         outcome; never re-execute, never re-record ser(S). *)
      ack_to_gtm sim sid tid pc kind (Hashtbl.find sim.dedup (sid, tid, pc))
        ~extra:0.0
    else if sim.faults_enabled && Hashtbl.mem sim.pending_global (sid, tid) then
      (* Redelivery of an operation still blocked here: its eventual
         completion produces the (single) acknowledgement. *)
      ()
    else if
      sim.faults_enabled && action = Op.Prepare
      && List.mem tid (Local_dbms.in_doubt dbms)
    then begin
      (* Retried prepare for a transaction already prepared (and carried
         through a site crash): the vote stands. *)
      Hashtbl.replace sim.dedup (sid, tid, pc) None;
      ack_to_gtm sim sid tid pc kind None ~extra:0.0
    end
    else if
      sim.faults_enabled && action <> Op.Begin
      && not (Local_dbms.is_active dbms tid)
    then begin
      (* The restarted site has no memory of this transaction. A Commit
         (or Abort) for a forgotten transaction must already have been
         performed — a participant forgets only after completing, and under
         2PC a commit is only sent once the prepare acknowledgement proved
         the transaction durable here. Anything else means the
         subtransaction's work was lost in the crash: vote no. *)
      match action with
      | Op.Commit | Op.Abort -> ack_to_gtm sim sid tid pc kind None ~extra:0.0
      | _ -> ack_to_gtm sim sid tid pc kind (Some "site-amnesia") ~extra:0.0
    end
    else begin
      declare_if_needed sim tid sid action;
      match Local_dbms.submit dbms tid action with
      | Local_dbms.Executed value ->
          if sim.faults_enabled then Hashtbl.replace sim.dedup (sid, tid, pc) None;
          (match action with
          | Op.Prepare -> note_prepared sim sid tid
          | Op.Commit | Op.Abort -> resolve_prepared sim sid tid
          | Op.Ticket_op ->
              if tracing sim then
                Sink.instant sim.obs.Obs.sink
                  ~track:(Sink.txn_track sim.obs.Obs.sink tid)
                  ~attrs:
                    [
                      ("site", string_of_int sid);
                      ( "value",
                        match value with Some v -> string_of_int v | None -> "?"
                      );
                    ]
                  "ticket"
          | Op.Begin | Op.Read _ | Op.Write _ -> ());
          (match kind with
          | Ser_op -> Ser_schedule.record sim.ser_log sid tid
          | Direct_op -> ());
          ack_to_gtm sim sid tid pc kind None ~extra:(service_at sim sid);
          drain_site sim sid
      | Local_dbms.Waiting ->
          Hashtbl.replace sim.pending_global (sid, tid) (kind, pc, sim.clock);
          if tracing sim then
            Hashtbl.replace sim.blocked_spans (sid, tid)
              (Sink.begin_span sim.obs.Obs.sink
                 ~track:(Sink.txn_track sim.obs.Obs.sink tid)
                 ~attrs:
                   [
                     ("site", string_of_int sid);
                     ("action", Op.action_to_string action);
                   ]
                 "site.blocked")
      | Local_dbms.Aborted reason ->
          (* A rejected ticket operation is the scheme's serialization
             conflict — classify it apart from ordinary data conflicts. *)
          let reason =
            if action = Op.Ticket_op then "ticket:" ^ reason else reason
          in
          if sim.faults_enabled then
            Hashtbl.replace sim.dedup (sid, tid, pc) (Some reason);
          ack_to_gtm sim sid tid pc kind (Some reason) ~extra:0.0;
          drain_site sim sid
    end
  end

let handle_local_step sim sid tid actions =
  match actions with
  | [] ->
      sim.committed_local <- sim.committed_local + 1;
      sim.live_locals <- sim.live_locals - 1;
      Hashtbl.remove sim.live_local_at tid
  | action :: rest -> (
      match Local_dbms.submit (site sim sid) tid action with
      | Local_dbms.Executed _ ->
          if rest = [] then begin
            sim.committed_local <- sim.committed_local + 1;
            sim.live_locals <- sim.live_locals - 1;
            Hashtbl.remove sim.live_local_at tid
          end
          else schedule sim (service_at sim sid) (Local_step (sid, tid, rest));
          drain_site sim sid
      | Local_dbms.Waiting -> Hashtbl.replace sim.local_cont tid (sid, rest, sim.clock)
      | Local_dbms.Aborted _ ->
          sim.aborted_local <- sim.aborted_local + 1;
          sim.live_locals <- sim.live_locals - 1;
          Hashtbl.remove sim.live_local_at tid;
          drain_site sim sid)

(* Kill the youngest global transaction blocked longer than the timeout. *)
let deadlock_scan sim =
  let victims =
    Hashtbl.fold
      (fun (sid, gid) (kind, pc, since) acc ->
        if sim.clock -. since >= sim.config.deadlock_timeout_ms then
          (gid, sid, kind, pc) :: acc
        else acc)
      sim.pending_global []
  in
  match List.sort (fun (a, _, _, _) (b, _, _, _) -> compare b a) victims with
  | [] -> ()
  | (gid, sid, kind, pc) :: _ ->
      sim.forced_aborts <- sim.forced_aborts + 1;
      Hashtbl.remove sim.pending_global (sid, gid);
      end_blocked_span sim (sid, gid) ~outcome:"deadlock-timeout";
      if tracing sim then
        Sink.instant sim.obs.Obs.sink
          ~track:(Sink.txn_track sim.obs.Obs.sink gid)
          ~attrs:[ ("site", string_of_int sid) ]
          "deadlock.kill";
      ignore (Local_dbms.submit (site sim sid) gid Op.Abort);
      resolve_prepared sim sid gid;
      mark_dead sim gid "global-deadlock" ~aborting_site:(Some sid);
      gtm_accept_ack sim gid pc sid kind None;
      drain_site sim sid

(* --- fault application ------------------------------------------------- *)

(* Crash and restart a site. Volatile state (protocol, blocked operations,
   the operation-dedup memory) dies; storage recovers from the WAL; prepared
   transactions survive in doubt. The GTM treats every transaction that had
   reached the site without preparing there as aborted by the crash. *)
let apply_site_crash sim sid =
  sim.site_crashes <- sim.site_crashes + 1;
  let dbms = site sim sid in
  Local_dbms.crash dbms;
  let stale =
    Hashtbl.fold
      (fun ((s, _, _) as key) _ acc -> if s = sid then key :: acc else acc)
      sim.dedup []
  in
  List.iter (Hashtbl.remove sim.dedup) stale;
  let blocked =
    Hashtbl.fold
      (fun ((s, _) as key) _ acc -> if s = sid then key :: acc else acc)
      sim.pending_global []
  in
  List.iter
    (fun key ->
      Hashtbl.remove sim.pending_global key;
      end_blocked_span sim key ~outcome:"site-crash")
    blocked;
  (* Local transactions active here died with the site. *)
  let dead_locals =
    Hashtbl.fold
      (fun tid s acc -> if s = sid then tid :: acc else acc)
      sim.live_local_at []
  in
  List.iter
    (fun tid ->
      Hashtbl.replace sim.dead_local tid ();
      Hashtbl.remove sim.live_local_at tid;
      Hashtbl.remove sim.local_cont tid;
      sim.aborted_local <- sim.aborted_local + 1;
      sim.live_locals <- sim.live_locals - 1)
    (List.sort compare dead_locals);
  (* Global subtransactions that reached this site without preparing were
     wiped (including any whose current operation targeted the site — its
     outcome, if any, is unrecoverable). In-doubt ones survive. *)
  let in_doubt = Local_dbms.in_doubt dbms in
  List.iter
    (fun gid ->
      let touched =
        List.mem sid (Gtm1.begun_sites sim.gtm1 gid)
        ||
        match (Gtm1.current_step sim.gtm1 gid, Hashtbl.find_opt sim.outstanding gid) with
        | Some step, Some _ -> step.Gtm1.site = sid
        | _ -> false
      in
      if touched && not (List.mem gid in_doubt) then
        mark_dead sim gid "site-crash" ~aborting_site:(Some sid))
    (Gtm1.active sim.gtm1)

(* Crash and restart the GTM. Volatile state — GTM1 program counters, the
   engine's QUEUE/WAIT, the scheme's structures, in-flight message
   bookkeeping — is lost; the durable log survives. Recovery is presumed
   abort: unfinished transactions with a logged Commit decision are
   completed at every site; all others are aborted everywhere. Messages of
   the previous incarnation still in the network die against the
   [is_known]/[outstanding] guards. *)
let apply_gtm_crash sim =
  sim.gtm_recoveries <- sim.gtm_recoveries + 1;
  sim.ser_waits <- sim.ser_waits + Engine.ser_wait_insertions sim.engine;
  (* Close the dying incarnation's open wait spans before the engine is
     replaced; they are the deepest frames on their transactions' tracks. *)
  Engine.close_open_spans sim.engine ~reason:"gtm-crash";
  sim.engine <- Engine.create ~obs:sim.obs (sim.make_scheme ());
  sim.gtm1 <- Gtm1.create ();
  Hashtbl.reset sim.outstanding;
  let entries = Gtm_log.analyze sim.gtm_log in
  if tracing sim then
    Sink.instant sim.obs.Obs.sink ~track:sim.gtm_track
      ~attrs:[ ("unfinished", string_of_int (List.length entries)) ]
      "gtm.crash";
  List.iter
    (fun (entry : Gtm_log.entry) ->
      let gid = entry.Gtm_log.txn.Txn.id in
      let sids = Txn.sites entry.Gtm_log.txn in
      sim.in_doubt_resolved <- sim.in_doubt_resolved + 1;
      end_txn_span sim gid
        ~outcome:
          (match entry.Gtm_log.decision with
          | Some Gtm_log.Commit -> "recovered-commit"
          | Some Gtm_log.Abort | None -> "recovered-abort");
      (match entry.Gtm_log.decision with
      | Some Gtm_log.Commit ->
          List.iter
            (fun sid -> schedule sim sim.config.latency_ms (Recovery_commit (sid, gid)))
            sids;
          sim.committed_global <- sim.committed_global + 1;
          sim.live_globals <- sim.live_globals - 1;
          sim.last_commit <- sim.clock;
          (match Hashtbl.find_opt sim.started gid with
          | Some started -> sim.responses <- (sim.clock -. started) :: sim.responses
          | None -> ())
      | Some Gtm_log.Abort | None ->
          (* A logged Abort was already counted when it was decided; only
             the presumed aborts are new. *)
          if entry.Gtm_log.decision = None then begin
            Gtm_log.append sim.gtm_log (Gtm_log.Decided (gid, Gtm_log.Abort));
            count_abort sim "gtm-crash"
          end;
          List.iter
            (fun sid -> schedule sim sim.config.latency_ms (Site_abort (sid, gid)))
            sids;
          (* The restarted GTM has no client to retry for: the transaction
             fails rather than restarts. *)
          sim.failed_global <- sim.failed_global + 1;
          sim.live_globals <- sim.live_globals - 1);
      Hashtbl.remove sim.budgets gid;
      Gtm_log.append sim.gtm_log (Gtm_log.Finished gid))
    entries

let apply_fault sim = function
  | Fault.Site_crash sid -> apply_site_crash sim sid
  | Fault.Gtm_crash -> apply_gtm_crash sim
  | Fault.Slow_site { sid; factor; duration } ->
      Hashtbl.replace sim.slow sid (factor, sim.clock +. duration)

let handle_event sim event =
  match event with
  | Global_arrival (txn, budget, started) -> admit_global sim txn budget started
  | Local_arrival (sid, txn, _budget) ->
      let dbms = site sim sid in
      if Local_dbms.needs_declarations dbms then
        Local_dbms.declare dbms txn.Txn.id
          (List.map
             (fun (item, write) ->
               (item, if write then Cc_types.Write_mode else Cc_types.Read_mode))
             (Txn.accesses_at txn sid));
      Hashtbl.replace sim.live_local_at txn.Txn.id sid;
      handle_local_step sim sid txn.Txn.id (List.map (fun s -> s.Txn.action) txn.Txn.script)
  | Site_deliver (sid, tid, pc, action, kind) ->
      handle_site_deliver sim sid tid pc action kind
  | Site_abort (sid, gid) ->
      Hashtbl.remove sim.pending_global (sid, gid);
      end_blocked_span sim (sid, gid) ~outcome:"aborted";
      if (not sim.faults_enabled) || Local_dbms.is_active (site sim sid) gid then
        ignore (Local_dbms.submit (site sim sid) gid Op.Abort);
      resolve_prepared sim sid gid;
      drain_site sim sid
  | Local_step (sid, tid, actions) ->
      if not (Hashtbl.mem sim.dead_local tid) then
        handle_local_step sim sid tid actions
  | Gtm_ser_ack (gid, pc, sid, failure) -> gtm_accept_ack sim gid pc sid Ser_op failure
  | Gtm_direct_ack (gid, pc, failure) ->
      gtm_accept_ack sim gid pc 0 Direct_op failure
  | Deadlock_scan ->
      deadlock_scan sim;
      if sim.live_globals > 0 then
        schedule sim sim.config.deadlock_timeout_ms Deadlock_scan
  | Fault_event fault -> apply_fault sim fault
  | Retry_check (gid, pc, attempt) ->
      if
        Gtm1.is_known sim.gtm1 gid
        && Hashtbl.find_opt sim.outstanding gid = Some pc
      then begin
        let step =
          match Gtm1.current_step sim.gtm1 gid with
          | Some s -> s
          | None -> assert false
        in
        let kind = if step.Gtm1.via_gtm2 then Ser_op else Direct_op in
        if Gtm1.is_dead sim.gtm1 gid then
          (* Dead and its resolution message was lost: complete the step
             internally so the transaction drains. *)
          gtm_accept_ack sim gid pc step.Gtm1.site kind None
        else if attempt >= sim.config.max_retries && not (commit_decided sim gid)
        then begin
          (* Retries exhausted before a decision: presume the site
             unreachable and abort. A decided Commit is never abandoned —
             it keeps retrying (the site will answer eventually). *)
          mark_dead sim gid "retry-exhausted" ~aborting_site:None;
          gtm_accept_ack sim gid pc step.Gtm1.site kind None
        end
        else begin
          sim.retries <- sim.retries + 1;
          if tracing sim then
            Sink.instant sim.obs.Obs.sink
              ~track:(Sink.txn_track sim.obs.Obs.sink gid)
              ~attrs:
                [
                  ("attempt", string_of_int (attempt + 1));
                  ("site", string_of_int step.Gtm1.site);
                ]
              "retry";
          send_to_site sim step.Gtm1.site gid pc step.Gtm1.action kind
            ~attempt:(attempt + 1)
        end
      end
  | Recovery_commit (sid, gid) ->
      let dbms = site sim sid in
      if Local_dbms.is_active dbms gid then
        ignore (Local_dbms.submit dbms gid Op.Commit);
      resolve_prepared sim sid gid;
      drain_site sim sid

(* Single source for the result's scalar fields: the JSON export and the
   metrics snapshot both read this list, so they cannot drift. *)
let result_fields r =
  [
    ("scheme", Json.Str r.scheme_name);
    ("committed_global", Json.Int r.committed_global);
    ("failed_global", Json.Int r.failed_global);
    ("restarts", Json.Int r.restarts);
    ("committed_local", Json.Int r.committed_local);
    ("aborted_local", Json.Int r.aborted_local);
    ("forced_aborts", Json.Int r.forced_aborts);
    ("ser_waits", Json.Int r.ser_waits);
    ("makespan_ms", Json.Float r.makespan_ms);
    ("throughput_per_s", Json.Float r.throughput_per_s);
    ("mean_response_ms", Json.Float r.mean_response_ms);
    ("p95_response_ms", Json.Float r.p95_response_ms);
    ("serializable", Json.Bool r.serializable);
    ("ser_s_serializable", Json.Bool r.ser_s_serializable);
    ("races", Json.Int r.races);
    ("site_crashes", Json.Int r.site_crashes);
    ("gtm_recoveries", Json.Int r.gtm_recoveries);
    ("msg_drops", Json.Int r.msg_drops);
    ("msg_dups", Json.Int r.msg_dups);
    ("retries", Json.Int r.retries);
    ("in_doubt_resolved", Json.Int r.in_doubt_resolved);
  ]

(* Mirror the end-of-run result into the metrics registry: Int fields become
   [des_<field>] counters, Float/Bool fields gauges. *)
let publish_result_metrics metrics r =
  List.iter
    (fun (name, v) ->
      let name = "des_" ^ name in
      match v with
      | Json.Int n -> Metrics.inc ~by:n (Metrics.counter metrics name)
      | Json.Float f -> Metrics.set (Metrics.gauge metrics name) f
      | Json.Bool b ->
          Metrics.set (Metrics.gauge metrics name) (if b then 1.0 else 0.0)
      | _ -> ())
    (result_fields r)

let run_scheme config make_scheme =
  let faults_enabled = not (Fault.is_none config.faults) in
  let workload =
    if faults_enabled then { config.workload with Workload.durable = true }
    else config.workload
  in
  let rng = Rng.create config.seed in
  let sites = Workload.make_sites workload in
  let site_tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace site_tbl (Local_dbms.site_id s) s) sites;
  let first_scheme = make_scheme () in
  let scheme_name = first_scheme.Scheme.name in
  let obs = config.obs in
  let sim =
    {
      config;
      engine = Engine.create ~obs first_scheme;
      gtm1 = Gtm1.create ();
      make_scheme;
      gtm_log = Gtm_log.create ();
      site_tbl;
      heap =
        Binary_heap.create
          ~cmp:(fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
          ();
      seq = 0;
      clock = 0.0;
      last_commit = 0.0;
      rng;
      faults_enabled;
      link_rng = Rng.create (config.faults.Fault.link_seed + 1);
      ser_log = Ser_schedule.create ();
      pending_global = Hashtbl.create 32;
      local_cont = Hashtbl.create 32;
      started = Hashtbl.create 64;
      fin_enqueued = Hashtbl.create 64;
      death_reason = Hashtbl.create 16;
      budgets = Hashtbl.create 64;
      outstanding = Hashtbl.create 32;
      dedup = Hashtbl.create 256;
      decided = Hashtbl.create 64;
      slow = Hashtbl.create 4;
      dead_local = Hashtbl.create 16;
      live_local_at = Hashtbl.create 32;
      committed_global = 0;
      failed_global = 0;
      restarts = 0;
      committed_local = 0;
      aborted_local = 0;
      forced_aborts = 0;
      ser_waits = 0;
      responses = [];
      live_globals = config.n_global;
      live_locals = config.locals_per_site * workload.Workload.m;
      global_attempts = [];
      site_crashes = 0;
      gtm_recoveries = 0;
      msg_drops = 0;
      msg_dups = 0;
      retries = 0;
      in_doubt_resolved = 0;
      obs;
      txn_spans = Hashtbl.create 64;
      op_spans = Hashtbl.create 32;
      blocked_spans = Hashtbl.create 32;
      prepared_at = Hashtbl.create 32;
      m_abort_causes = Hashtbl.create 8;
      m_ser_latency = Metrics.histogram obs.Obs.metrics "des_ser_latency_ms";
      m_response = Metrics.histogram obs.Obs.metrics "des_response_ms";
      m_in_doubt = Metrics.histogram obs.Obs.metrics "des_in_doubt_ms";
      net_track = Sink.track obs.Obs.sink "net";
      gtm_track = Sink.track obs.Obs.sink "gtm";
    }
  in
  (* Span/metric timestamps are simulated time, read live off the clock. *)
  Obs.set_clock obs (fun () -> sim.clock);
  if obs.Obs.live then
    List.iter (fun dbms -> Local_dbms.attach_obs dbms obs) sites;
  (* Arrival processes. *)
  let t = ref 0.0 in
  for _ = 1 to config.n_global do
    t := !t +. Rng.exponential rng config.global_rate;
    let txn = Workload.global_txn rng workload in
    sim.seq <- sim.seq + 1;
    Binary_heap.push sim.heap (!t, sim.seq, Global_arrival (txn, config.max_restarts, !t))
  done;
  List.iter
    (fun dbms ->
      let sid = Local_dbms.site_id dbms in
      let t = ref 0.0 in
      for _ = 1 to config.locals_per_site do
        t := !t +. Rng.exponential rng config.local_rate;
        let txn = Workload.local_txn rng workload sid in
        sim.seq <- sim.seq + 1;
        Binary_heap.push sim.heap (!t, sim.seq, Local_arrival (sid, txn, 0))
      done)
    sites;
  schedule sim config.deadlock_timeout_ms Deadlock_scan;
  if faults_enabled then
    List.iter
      (fun (at, fault) ->
        sim.seq <- sim.seq + 1;
        Binary_heap.push sim.heap (at, sim.seq, Fault_event fault))
      config.faults.Fault.events;
  (* Main loop. *)
  let steps = ref 0 in
  let continue_running = ref true in
  while !continue_running do
    match Binary_heap.pop sim.heap with
    | None -> continue_running := false
    | Some (time, _, event) ->
        incr steps;
        if !steps > 2_000_000 then failwith "Des: event budget exceeded";
        sim.clock <- time;
        handle_event sim event;
        drive sim
  done;
  (* Close anything still open so exported traces are well-formed: the
     engine's wait spans are deepest, then each surviving transaction's
     blocked/op/txn spans (end_txn_span keeps the LIFO order), then any
     orphans. *)
  if sim.obs.Obs.live then begin
    Engine.close_open_spans sim.engine ~reason:"end-of-run";
    let keys tbl = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) tbl []) in
    List.iter (fun g -> end_txn_span sim g ~outcome:"end-of-run") (keys sim.txn_spans);
    List.iter (fun k -> end_blocked_span sim k ~outcome:"end-of-run") (keys sim.blocked_spans);
    List.iter (fun g -> ignore (end_op_span sim g ~outcome:"end-of-run")) (keys sim.op_spans)
  end;
  let schedules = List.map Local_dbms.schedule sites in
  let responses = sim.responses in
  let attempts = List.rev sim.global_attempts in
  let trace =
    Mdbs_analysis.Trace.of_schedules
      ~protocols:
        (List.map
           (fun dbms -> (Local_dbms.site_id dbms, Local_dbms.protocol_kind dbms))
           sites)
      ~globals:(List.map (fun txn -> (txn.Txn.id, Txn.sites txn)) attempts)
      ~ser_events:(Ser_schedule.events sim.ser_log)
      schedules
  in
  let races = List.length (Mdbs_analysis.Race.detect trace) in
  let result =
    {
      scheme_name;
      committed_global = sim.committed_global;
      failed_global = sim.failed_global;
      restarts = sim.restarts;
      committed_local = sim.committed_local;
      aborted_local = sim.aborted_local;
      forced_aborts = sim.forced_aborts;
      ser_waits = sim.ser_waits + Engine.ser_wait_insertions sim.engine;
      makespan_ms = sim.clock;
      throughput_per_s =
        (if sim.last_commit > 0.0 then
           float_of_int sim.committed_global /. sim.last_commit *. 1000.0
         else 0.0);
      mean_response_ms = (match responses with [] -> 0.0 | _ -> Stats.mean responses);
      p95_response_ms =
        (match responses with [] -> 0.0 | _ -> Stats.percentile responses 95.0);
      serializable = Serializability.is_serializable schedules;
      ser_s_serializable = Ser_schedule.is_serializable sim.ser_log;
      races;
      site_crashes = sim.site_crashes;
      gtm_recoveries = sim.gtm_recoveries;
      msg_drops = sim.msg_drops;
      msg_dups = sim.msg_dups;
      retries = sim.retries;
      in_doubt_resolved = sim.in_doubt_resolved;
    }
  in
  if sim.obs.Obs.live then publish_result_metrics sim.obs.Obs.metrics result;
  { result; trace; sites; attempts; obs = sim.obs }

let run config scheme =
  if List.exists (fun (_, f) -> f = Fault.Gtm_crash) config.faults.Fault.events
  then
    invalid_arg
      "Des.run: a plan with GTM crashes needs a scheme factory (use run_full)";
  (run_scheme config (fun () -> scheme)).result

let run_full config kind =
  Types.reset_tids ();
  run_scheme config (fun () -> Registry.make kind)

let run_kind config kind = (run_full config kind).result

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d committed (%d failed, %d restarts), throughput %.1f/s, \
     response mean %.1f ms / p95 %.1f ms; locals %d/%d; forced %d; waits %d; \
     CSR %b; ser(S) %b; races %d@]"
    r.scheme_name r.committed_global r.failed_global r.restarts r.throughput_per_s
    r.mean_response_ms r.p95_response_ms r.committed_local r.aborted_local
    r.forced_aborts r.ser_waits r.serializable r.ser_s_serializable r.races;
  if
    r.site_crashes + r.gtm_recoveries + r.msg_drops + r.msg_dups + r.retries
    + r.in_doubt_resolved
    > 0
  then
    Format.fprintf ppf
      "@,  faults: %d site crash(es), %d GTM recover(ies), %d drop(s), \
       %d dup(s), %d retr(ies), %d resolved by recovery"
      r.site_crashes r.gtm_recoveries r.msg_drops r.msg_dups r.retries
      r.in_doubt_resolved

let result_to_json r = Json.Obj (result_fields r)
