open Mdbs_model
module Rng = Mdbs_util.Rng
module Binary_heap = Mdbs_util.Binary_heap
module Stats = Mdbs_util.Stats
module Engine = Mdbs_core.Engine
module Scheme = Mdbs_core.Scheme
module Queue_op = Mdbs_core.Queue_op
module Gtm1 = Mdbs_core.Gtm1
module Registry = Mdbs_core.Registry
module Local_dbms = Mdbs_site.Local_dbms
module Cc_types = Mdbs_lcc.Cc_types

type config = {
  workload : Workload.config;
  n_global : int;
  global_rate : float;
  locals_per_site : int;
  local_rate : float;
  service_ms : float;
  latency_ms : float;
  deadlock_timeout_ms : float;
  max_restarts : int;
  seed : int;
  atomic_commit : bool;
}

let default =
  {
    workload = Workload.default;
    n_global = 60;
    global_rate = 0.05;
    locals_per_site = 20;
    local_rate = 0.05;
    service_ms = 1.0;
    latency_ms = 2.0;
    deadlock_timeout_ms = 200.0;
    max_restarts = 10;
    seed = 23;
    atomic_commit = false;
  }

type result = {
  scheme_name : string;
  committed_global : int;
  failed_global : int;
  restarts : int;
  committed_local : int;
  aborted_local : int;
  forced_aborts : int;
  ser_waits : int;
  makespan_ms : float;
  throughput_per_s : float;
  mean_response_ms : float;
  p95_response_ms : float;
  serializable : bool;
  ser_s_serializable : bool;
  races : int;
}

type op_kind = Ser_op | Direct_op

type event =
  | Global_arrival of Txn.t * int * float
      (* transaction, restart budget, logical start time *)
  | Local_arrival of Types.sid * Txn.t * int
  | Site_deliver of Types.sid * Types.tid * Op.action * op_kind
      (* an operation of a global transaction reaches its site *)
  | Site_abort of Types.sid * Types.gid (* rollback order reaches the site *)
  | Local_step of Types.sid * Types.tid * Op.action list
  | Gtm_ser_ack of Types.gid * Types.sid * string option
  | Gtm_direct_ack of Types.gid * string option
  | Deadlock_scan

type sim = {
  config : config;
  engine : Engine.t;
  gtm1 : Gtm1.t;
  site_tbl : (Types.sid, Local_dbms.t) Hashtbl.t;
  heap : (float * int * event) Binary_heap.t;
  mutable seq : int;
  mutable clock : float;
  mutable last_commit : float;
  rng : Rng.t;
  ser_log : Ser_schedule.t;
  (* blocked operations at sites: value = (kind, block start time) *)
  pending_global : (Types.sid * Types.gid, op_kind * float) Hashtbl.t;
  local_cont : (Types.tid, Types.sid * Op.action list * float) Hashtbl.t;
  started : (Types.gid, float) Hashtbl.t; (* logical start per attempt *)
  fin_enqueued : (Types.gid, unit) Hashtbl.t;
  death_reason : (Types.gid, string) Hashtbl.t;
  budgets : (Types.gid, Txn.t * int) Hashtbl.t;
  mutable committed_global : int;
  mutable failed_global : int;
  mutable restarts : int;
  mutable committed_local : int;
  mutable aborted_local : int;
  mutable forced_aborts : int;
  mutable responses : float list;
  mutable live_globals : int; (* logical transactions not yet resolved *)
  mutable live_locals : int;
  mutable global_attempts : Txn.t list;
}

let schedule sim delay event =
  sim.seq <- sim.seq + 1;
  Binary_heap.push sim.heap (sim.clock +. delay, sim.seq, event)

let site sim sid = Hashtbl.find sim.site_tbl sid

let service sim = Rng.exponential sim.rng (1.0 /. sim.config.service_ms)

let declare_if_needed sim gid sid action =
  if action = Op.Begin then begin
    let dbms = site sim sid in
    if Local_dbms.needs_declarations dbms then
      Local_dbms.declare dbms gid
        (List.map
           (fun (item, write) ->
             (item, if write then Cc_types.Write_mode else Cc_types.Read_mode))
           (Gtm1.declaration_for sim.gtm1 gid sid))
  end

(* The GTM learns of a subtransaction failure: kill the transaction and
   order rollbacks at every site where it is still active. *)
let mark_dead sim gid reason ~aborting_site =
  if Gtm1.is_known sim.gtm1 gid && not (Gtm1.is_dead sim.gtm1 gid) then begin
    Gtm1.mark_dead sim.gtm1 gid;
    Hashtbl.replace sim.death_reason gid reason;
    (match aborting_site with
    | Some s -> Gtm1.note_site_terminated sim.gtm1 gid s
    | None -> ());
    List.iter
      (fun s ->
        schedule sim sim.config.latency_ms (Site_abort (s, gid));
        Gtm1.note_site_terminated sim.gtm1 gid s)
      (Gtm1.begun_sites sim.gtm1 gid)
  end

(* Process completions that a site event may have unblocked. *)
let drain_site sim sid =
  List.iter
    (fun completion ->
      let tid = completion.Local_dbms.tid in
      match Hashtbl.find_opt sim.pending_global (sid, tid) with
      | Some (kind, _) ->
          Hashtbl.remove sim.pending_global (sid, tid);
          let delay = service sim +. sim.config.latency_ms in
          (match kind with
          | Ser_op ->
              Ser_schedule.record sim.ser_log sid tid;
              schedule sim delay (Gtm_ser_ack (tid, sid, None))
          | Direct_op -> schedule sim delay (Gtm_direct_ack (tid, None)))
      | None -> (
          match Hashtbl.find_opt sim.local_cont tid with
          | Some (cont_sid, rest, _) ->
              Hashtbl.remove sim.local_cont tid;
              schedule sim (service sim) (Local_step (cont_sid, tid, rest))
          | None -> ()))
    (Local_dbms.drain_completions (site sim sid))

(* Drive every admitted global transaction that is not in flight: dispatch
   its next operation into the (simulated) network, or finish it. *)
let rec drive sim =
  let effects = Engine.run sim.engine in
  List.iter
    (fun effect ->
      match effect with
      | Scheme.Submit_ser (gid, sid) ->
          if Gtm1.is_dead sim.gtm1 gid then
            (* Nothing to run at the site: acknowledge internally. *)
            Engine.enqueue sim.engine (Queue_op.Ack (gid, sid))
          else begin
            let action =
              match Gtm1.current_step sim.gtm1 gid with
              | Some step when step.Gtm1.site = sid && step.Gtm1.via_gtm2 ->
                  step.Gtm1.action
              | Some _ | None -> invalid_arg "Des: Submit_ser mismatch"
            in
            schedule sim sim.config.latency_ms (Site_deliver (sid, gid, action, Ser_op))
          end
      | Scheme.Forward_ack (gid, _) ->
          if Gtm1.is_known sim.gtm1 gid then Gtm1.on_ack sim.gtm1 gid
      | Scheme.Abort_global gid ->
          mark_dead sim gid "gtm2-abort" ~aborting_site:None;
          if Gtm1.is_known sim.gtm1 gid then Gtm1.on_ack sim.gtm1 gid)
    effects;
  let dispatched = ref false in
  List.iter
    (fun gid ->
      match Gtm1.next sim.gtm1 gid with
      | Gtm1.In_flight -> ()
      | Gtm1.Finished -> if finish_global sim gid then dispatched := true
      | Gtm1.Dispatch_ser sid ->
          Gtm1.note_dispatched sim.gtm1 gid;
          Engine.enqueue sim.engine (Queue_op.Ser (gid, sid));
          dispatched := true
      | Gtm1.Dispatch_direct step ->
          Gtm1.note_dispatched sim.gtm1 gid;
          schedule sim sim.config.latency_ms
            (Site_deliver (step.Gtm1.site, gid, step.Gtm1.action, Direct_op));
          dispatched := true)
    (Gtm1.active sim.gtm1);
  if !dispatched || not (Engine.idle sim.engine) then drive sim

and finish_global sim gid =
  if Hashtbl.mem sim.fin_enqueued gid then false
  else begin
    Hashtbl.replace sim.fin_enqueued gid ();
    Engine.enqueue sim.engine (Queue_op.Fin gid);
    let started = Hashtbl.find sim.started gid in
    (if Gtm1.is_dead sim.gtm1 gid then begin
       let txn, budget = Hashtbl.find sim.budgets gid in
       if budget > 0 then begin
         sim.restarts <- sim.restarts + 1;
         let clone = { txn with Txn.id = Types.fresh_tid () } in
         (* Back off a little before retrying. *)
         schedule sim (2.0 *. sim.config.latency_ms)
           (Global_arrival (clone, budget - 1, started))
       end
       else begin
         sim.failed_global <- sim.failed_global + 1;
         sim.live_globals <- sim.live_globals - 1
       end
     end
     else begin
       sim.committed_global <- sim.committed_global + 1;
       sim.live_globals <- sim.live_globals - 1;
       sim.last_commit <- sim.clock;
       sim.responses <- (sim.clock -. started) :: sim.responses
     end);
    Hashtbl.remove sim.budgets gid;
    Gtm1.finish sim.gtm1 gid;
    true
  end

let admit_global sim txn budget started =
  let ser_point_of sid =
    let dbms = site sim sid in
    if sim.config.atomic_commit then
      Ser_fun.for_protocol_atomic (Local_dbms.protocol_kind dbms)
    else Local_dbms.serialization_point dbms
  in
  let info =
    Gtm1.admit sim.gtm1 txn ~atomic:sim.config.atomic_commit ~ser_point_of ()
  in
  sim.global_attempts <- txn :: sim.global_attempts;
  Hashtbl.replace sim.started txn.Txn.id started;
  Hashtbl.replace sim.budgets txn.Txn.id (txn, budget);
  Engine.enqueue sim.engine (Queue_op.Init info)

let handle_site_deliver sim sid tid action kind =
  if not (Gtm1.is_known sim.gtm1 tid) then ()
  else if Gtm1.is_dead sim.gtm1 tid then begin
    (* The rollback raced this operation; acknowledge without executing. *)
    match kind with
    | Ser_op -> Engine.enqueue sim.engine (Queue_op.Ack (tid, sid))
    | Direct_op -> schedule sim sim.config.latency_ms (Gtm_direct_ack (tid, None))
  end
  else begin
    declare_if_needed sim tid sid action;
    match Local_dbms.submit (site sim sid) tid action with
    | Local_dbms.Executed _ ->
        let delay = service sim +. sim.config.latency_ms in
        (match kind with
        | Ser_op ->
            Ser_schedule.record sim.ser_log sid tid;
            schedule sim delay (Gtm_ser_ack (tid, sid, None))
        | Direct_op -> schedule sim delay (Gtm_direct_ack (tid, None)));
        drain_site sim sid
    | Local_dbms.Waiting ->
        Hashtbl.replace sim.pending_global (sid, tid) (kind, sim.clock)
    | Local_dbms.Aborted reason ->
        let delay = sim.config.latency_ms in
        (match kind with
        | Ser_op -> schedule sim delay (Gtm_ser_ack (tid, sid, Some reason))
        | Direct_op -> schedule sim delay (Gtm_direct_ack (tid, Some reason)));
        drain_site sim sid
  end

let handle_local_step sim sid tid actions =
  match actions with
  | [] ->
      sim.committed_local <- sim.committed_local + 1;
      sim.live_locals <- sim.live_locals - 1
  | action :: rest -> (
      match Local_dbms.submit (site sim sid) tid action with
      | Local_dbms.Executed _ ->
          if rest = [] then begin
            sim.committed_local <- sim.committed_local + 1;
            sim.live_locals <- sim.live_locals - 1
          end
          else schedule sim (service sim) (Local_step (sid, tid, rest));
          drain_site sim sid
      | Local_dbms.Waiting -> Hashtbl.replace sim.local_cont tid (sid, rest, sim.clock)
      | Local_dbms.Aborted _ ->
          sim.aborted_local <- sim.aborted_local + 1;
          sim.live_locals <- sim.live_locals - 1;
          drain_site sim sid)

(* Kill the youngest global transaction blocked longer than the timeout. *)
let deadlock_scan sim =
  let victims =
    Hashtbl.fold
      (fun (sid, gid) (kind, since) acc ->
        if sim.clock -. since >= sim.config.deadlock_timeout_ms then
          (gid, sid, kind) :: acc
        else acc)
      sim.pending_global []
  in
  match List.sort (fun (a, _, _) (b, _, _) -> compare b a) victims with
  | [] -> ()
  | (gid, sid, kind) :: _ ->
      sim.forced_aborts <- sim.forced_aborts + 1;
      Hashtbl.remove sim.pending_global (sid, gid);
      ignore (Local_dbms.submit (site sim sid) gid Op.Abort);
      mark_dead sim gid "global-deadlock" ~aborting_site:(Some sid);
      (match kind with
      | Ser_op -> Engine.enqueue sim.engine (Queue_op.Ack (gid, sid))
      | Direct_op ->
          if Gtm1.is_known sim.gtm1 gid then Gtm1.on_ack sim.gtm1 gid);
      drain_site sim sid

let handle_event sim event =
  match event with
  | Global_arrival (txn, budget, started) -> admit_global sim txn budget started
  | Local_arrival (sid, txn, _budget) ->
      let dbms = site sim sid in
      if Local_dbms.needs_declarations dbms then
        Local_dbms.declare dbms txn.Txn.id
          (List.map
             (fun (item, write) ->
               (item, if write then Cc_types.Write_mode else Cc_types.Read_mode))
             (Txn.accesses_at txn sid));
      handle_local_step sim sid txn.Txn.id (List.map (fun s -> s.Txn.action) txn.Txn.script)
  | Site_deliver (sid, tid, action, kind) -> handle_site_deliver sim sid tid action kind
  | Site_abort (sid, gid) ->
      Hashtbl.remove sim.pending_global (sid, gid);
      ignore (Local_dbms.submit (site sim sid) gid Op.Abort);
      drain_site sim sid
  | Local_step (sid, tid, actions) -> handle_local_step sim sid tid actions
  | Gtm_ser_ack (gid, sid, failure) ->
      (match failure with
      | Some reason -> mark_dead sim gid reason ~aborting_site:(Some sid)
      | None -> ());
      Engine.enqueue sim.engine (Queue_op.Ack (gid, sid))
  | Gtm_direct_ack (gid, failure) ->
      (match failure with
      | Some reason -> mark_dead sim gid reason ~aborting_site:None
      | None -> ());
      if Gtm1.is_known sim.gtm1 gid then Gtm1.on_ack sim.gtm1 gid
  | Deadlock_scan ->
      deadlock_scan sim;
      if sim.live_globals > 0 then
        schedule sim sim.config.deadlock_timeout_ms Deadlock_scan

let run config scheme =
  let rng = Rng.create config.seed in
  let sites = Workload.make_sites config.workload in
  let site_tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace site_tbl (Local_dbms.site_id s) s) sites;
  let sim =
    {
      config;
      engine = Engine.create scheme;
      gtm1 = Gtm1.create ();
      site_tbl;
      heap =
        Binary_heap.create
          ~cmp:(fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
          ();
      seq = 0;
      clock = 0.0;
      last_commit = 0.0;
      rng;
      ser_log = Ser_schedule.create ();
      pending_global = Hashtbl.create 32;
      local_cont = Hashtbl.create 32;
      started = Hashtbl.create 64;
      fin_enqueued = Hashtbl.create 64;
      death_reason = Hashtbl.create 16;
      budgets = Hashtbl.create 64;
      committed_global = 0;
      failed_global = 0;
      restarts = 0;
      committed_local = 0;
      aborted_local = 0;
      forced_aborts = 0;
      responses = [];
      live_globals = config.n_global;
      live_locals = config.locals_per_site * config.workload.Workload.m;
      global_attempts = [];
    }
  in
  (* Arrival processes. *)
  let t = ref 0.0 in
  for _ = 1 to config.n_global do
    t := !t +. Rng.exponential rng config.global_rate;
    let txn = Workload.global_txn rng config.workload in
    sim.seq <- sim.seq + 1;
    Binary_heap.push sim.heap (!t, sim.seq, Global_arrival (txn, config.max_restarts, !t))
  done;
  List.iter
    (fun dbms ->
      let sid = Local_dbms.site_id dbms in
      let t = ref 0.0 in
      for _ = 1 to config.locals_per_site do
        t := !t +. Rng.exponential rng config.local_rate;
        let txn = Workload.local_txn rng config.workload sid in
        sim.seq <- sim.seq + 1;
        Binary_heap.push sim.heap (!t, sim.seq, Local_arrival (sid, txn, 0))
      done)
    sites;
  schedule sim config.deadlock_timeout_ms Deadlock_scan;
  (* Main loop. *)
  let steps = ref 0 in
  let continue_running = ref true in
  while !continue_running do
    match Binary_heap.pop sim.heap with
    | None -> continue_running := false
    | Some (time, _, event) ->
        incr steps;
        if !steps > 2_000_000 then failwith "Des: event budget exceeded";
        sim.clock <- time;
        handle_event sim event;
        drive sim
  done;
  let schedules = List.map Local_dbms.schedule sites in
  let responses = sim.responses in
  let races =
    let trace =
      Mdbs_analysis.Trace.of_schedules
        ~protocols:
          (List.map
             (fun dbms ->
               (Local_dbms.site_id dbms, Local_dbms.protocol_kind dbms))
             sites)
        ~globals:
          (List.map
             (fun txn -> (txn.Txn.id, Txn.sites txn))
             (List.rev sim.global_attempts))
        ~ser_events:(Ser_schedule.events sim.ser_log)
        schedules
    in
    List.length (Mdbs_analysis.Race.detect trace)
  in
  {
    scheme_name = scheme.Scheme.name;
    committed_global = sim.committed_global;
    failed_global = sim.failed_global;
    restarts = sim.restarts;
    committed_local = sim.committed_local;
    aborted_local = sim.aborted_local;
    forced_aborts = sim.forced_aborts;
    ser_waits = Engine.ser_wait_insertions sim.engine;
    makespan_ms = sim.clock;
    throughput_per_s =
      (if sim.last_commit > 0.0 then
         float_of_int sim.committed_global /. sim.last_commit *. 1000.0
       else 0.0);
    mean_response_ms = (match responses with [] -> 0.0 | _ -> Stats.mean responses);
    p95_response_ms =
      (match responses with [] -> 0.0 | _ -> Stats.percentile responses 95.0);
    serializable = Serializability.is_serializable schedules;
    ser_s_serializable = Ser_schedule.is_serializable sim.ser_log;
    races;
  }

let run_kind config kind =
  Types.reset_tids ();
  run config (Registry.make kind)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d committed (%d failed, %d restarts), throughput %.1f/s, \
     response mean %.1f ms / p95 %.1f ms; locals %d/%d; forced %d; waits %d; \
     CSR %b; ser(S) %b; races %d@]"
    r.scheme_name r.committed_global r.failed_global r.restarts r.throughput_per_s
    r.mean_response_ms r.p95_response_ms r.committed_local r.aborted_local
    r.forced_aborts r.ser_waits r.serializable r.ser_s_serializable r.races
