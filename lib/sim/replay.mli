(** Engine-level replay harness.

    This is the measurement rig for the paper's analytic claims (experiments
    E1-E5): it drives a GTM2 scheme with a synthetic stream of
    [init]/[ser]/[ack]/[fin] operations, with no sites underneath —
    acknowledgements are produced by a configurable-latency server model.
    GTM1's discipline is respected: a transaction's next serialization
    operation is inserted only after the previous one's acknowledgement has
    been forwarded.

    The scheduling decisions (which transaction inserts next) come from a
    seeded RNG, so different schemes face the {e same arrival process};
    degree-of-concurrency comparisons count WAIT insertions under identical
    seeds. *)

type spec = { gid : int; sites : int list }
(** One global transaction of the trace: its [Ĝ_i]. *)

type config = {
  m : int;  (** Sites. *)
  n_txns : int;  (** Total transactions replayed. *)
  d_av : int;  (** Sites per transaction. *)
  concurrency : int;  (** Maximum simultaneously active transactions. *)
  ack_latency : int;
      (** Scheduling decisions between a [Submit_ser] effect and the
          arrival of its acknowledgement. [0] = immediate. *)
}

val default : config

type result = {
  scheme_name : string;
  txns : int;
  ser_waits : int;  (** [Ser] operations that entered WAIT. *)
  total_waits : int;
  submits : int;  (** [Submit_ser] effects — must equal [txns * d_av]. *)
  scheme_steps : int;
  engine_steps : int;
  total_steps : int;
  steps_per_txn : float;
  submissions : (int * int) list;
      (** [(gid, site)] in submission order — the realized execution order of
          serialization operations, from which [ser(S)] can be rebuilt.
          Includes operations of transactions later aborted; filter with
          [aborted_gids] before serializability checks. *)
  aborts : int;
      (** Transactions killed by a non-conservative scheme ([Abort_global]);
          always 0 for the paper's Schemes 0-3. *)
  aborted_gids : int list;
  trace : Mdbs_analysis.Trace.t;
      (** The realized [ser(S)] as a static trace (declared site-visit
          orders plus submission order, aborted transactions filtered) —
          ready for {!Mdbs_analysis.Analysis.analyze}. *)
  certified : bool;
      (** The run self-certified: the static certifier discharged the
          Theorem-2 obligation on [trace]. Must hold for Schemes 0-3. *)
}

val generate_specs : Mdbs_util.Rng.t -> config -> spec list
(** The transaction population for a configuration (deterministic in the
    RNG). *)

val run_specs :
  ?seed:int -> concurrency:int -> ack_latency:int ->
  spec list -> Mdbs_core.Scheme.t -> result
(** Replay an explicit population. Raises [Failure] if the trace cannot be
    driven to completion (a scheme deadlock — none of the paper's schemes
    exhibits one). *)

val run : ?seed:int -> config -> Mdbs_core.Scheme.t -> result
(** [generate_specs] + [run_specs], seeding both from [seed]. *)

val run_fixed : ?seed:int -> config -> Mdbs_core.Scheme.t -> result
(** Open-loop variant for degree-of-concurrency comparisons: the arrival
    order of [init] and [ser] operations is generated once from the seed and
    is {e identical for every scheme} (GTM1's ack gating is not applied to
    arrivals; acknowledgements are immediate; each [fin] arrives as soon as
    its transaction's serialization operations have all been acknowledged).
    This realizes the paper's "for any given order of insertion of
    operations into QUEUE by GTM1" (§4): WAIT-insertion counts of different
    schemes on the same seed are directly comparable. *)
