(** Workload generation: sites, local transactions and global transactions.

    All randomness flows from an explicit seed; equal configurations generate
    equal workloads. *)

open Mdbs_model

type config = {
  m : int;  (** Number of sites. *)
  protocols : Types.protocol_kind list;
      (** Protocol per site, cycled if shorter than [m]. *)
  data_per_site : int;  (** Items [Key 0 .. Key (data_per_site - 1)]. *)
  d_av : int;  (** Sites per global transaction. *)
  ops_per_subtxn : int;  (** Data operations at each site of a global txn. *)
  local_ops : int;  (** Data operations of a local transaction. *)
  write_ratio : float;  (** Fraction of data operations that are writes. *)
  hotspot : int;
      (** Accesses are drawn from the first [hotspot] keys when positive —
          higher contention; [0] means uniform over all keys. *)
  zipf_theta : float;
      (** When positive, keys are drawn Zipf-distributed with this skew
          parameter (rank [k] ∝ [(k+1) ** -theta]) over the key range
          (after the [hotspot] cap, if any); [0] means uniform. *)
  locality : float;
      (** Probability that a global transaction's site footprint is
          confined to one contiguous site group (see [site_groups]);
          the rest sample sites uniformly. [0] disables. *)
  site_groups : int;
      (** Number of contiguous site groups used by [locality]; group [k]
          of [g] covers sites [k*m/g .. (k+1)*m/g), matching
          [Shard_map]'s partition so with [site_groups = gtm_shards] a
          "local" global lands inside one scheduling shard. [<= 1]
          disables locality. *)
  durable : bool;
      (** Attach a write-ahead log to every site, enabling
          {!Mdbs_site.Local_dbms.crash}. Default [false]; fault-injecting
          runs force it on. *)
  backend : [ `Mem | `Lsm of string ];
      (** Storage engine per site. [`Lsm base] roots site [k]'s store at
          [base/site-k] and implies durability. Default [`Mem]. *)
  lsm_params : Mdbs_storage_lsm.Lsm.params option;
      (** Engine tuning for [`Lsm] (memtable watermark, compaction
          trigger, cache size); [None] means engine defaults. *)
}

val default : config

val make_sites : config -> Mdbs_site.Local_dbms.t list
(** Sites [0 .. m-1] with protocols assigned cyclically from
    [config.protocols]. *)

val global_txn : Mdbs_util.Rng.t -> config -> Txn.t
(** A fresh global transaction over [d_av] distinct random sites. *)

val local_txn : Mdbs_util.Rng.t -> config -> Types.sid -> Txn.t
(** A fresh local transaction at the given site. *)

val global_txns : Mdbs_util.Rng.t -> config -> int -> Txn.t list
