(** Timed discrete-event simulation of the full MDBS (experiment E13).

    Where {!Driver} measures logical quantities (waits, restarts, audits)
    with instantaneous execution, this simulator adds {e time}: exponential
    operation service times at the sites, a symmetric GTM-site network
    latency, Poisson arrivals of global and local transactions, and a
    deadlock-timeout scan. It reports throughput and response times — the
    performance dimension the paper discusses qualitatively in §3
    ("delaying an operation of ser(S) may correspond to delaying the
    execution of an entire global subtransaction").

    The machinery reuses the real components: GTM1, the GTM2 engine with
    any scheme, and the per-site local DBMSs. Only the transport is
    simulated. All randomness is seeded; runs are deterministic.

    {2 Faults}

    With a non-empty {!Fault.t} plan in the config, the transport and the
    processes become unreliable: GTM<->site messages may be dropped,
    duplicated or delayed (coin flips from the plan's dedicated seeded
    stream); sites crash and restart ({!Mdbs_site.Local_dbms.crash} — sites
    are forced durable); the GTM crashes and recovers from its durable
    {!Mdbs_core.Gtm_log}; sites slow down. Operations carry ids (gid x
    program counter): sites keep a volatile dedup cache and re-acknowledge
    redelivered operations without re-executing them, and the GTM accepts
    only the acknowledgement of the operation it is waiting on, so retries
    — timeout-based, with capped exponential backoff, driven by
    [retry_timeout_ms]/[max_retries] — are idempotent. A transaction whose
    retries are exhausted before a commit decision is aborted everywhere; a
    logged Commit decision is never abandoned. With [Fault.none] (the
    default) behaviour is identical to the fault-free simulator. *)

open Mdbs_model

type config = {
  workload : Workload.config;
  n_global : int;  (** Global transactions to generate. *)
  global_rate : float;  (** Global arrivals per millisecond. *)
  locals_per_site : int;  (** Local transactions per site. *)
  local_rate : float;  (** Local arrivals per millisecond, per site. *)
  service_ms : float;  (** Mean per-operation service time at a site. *)
  latency_ms : float;  (** One-way GTM-to-site message latency. *)
  deadlock_timeout_ms : float;
      (** A global transaction blocked at a site longer than this is
          presumed in a cross-site deadlock and aborted. *)
  max_restarts : int;
  seed : int;
  atomic_commit : bool;
  faults : Fault.t;  (** Fault plan; {!Fault.none} = reliable run. *)
  retry_timeout_ms : float;
      (** Base retransmission timeout for unacknowledged operations
          (fault mode only). *)
  max_retries : int;
      (** Retries before an undecided transaction is presumed lost and
          aborted (fault mode only). *)
  obs : Mdbs_obs.Obs.t;
      (** Observability bundle. With the default {!Mdbs_obs.Obs.disabled}
          the run traces nothing and allocates nothing for it; pass
          {!Mdbs_obs.Obs.create} to collect spans (sim-time timestamps,
          exportable as a Chrome [trace_event] file), pipeline metrics and
          profiles. The bundle outlives the run — snapshot or export it
          afterwards. *)
}

val default : config

type result = {
  scheme_name : string;
  committed_global : int;
  failed_global : int;
  restarts : int;
  committed_local : int;
  aborted_local : int;
  forced_aborts : int;
  ser_waits : int;
  makespan_ms : float;  (** Time of the last event. *)
  throughput_per_s : float;  (** Committed global transactions per second. *)
  mean_response_ms : float;
      (** Mean admission-to-commit latency of committed global transactions
          (from first arrival of the logical transaction, across
          restarts). *)
  p95_response_ms : float;
  serializable : bool;
  ser_s_serializable : bool;
  races : int;
      (** Conflicting same-site access pairs the reconstructed
          happens-before relation leaves unordered
          ({!Mdbs_analysis.Race.detect} over the captured trace). *)
  site_crashes : int;  (** Site crash/restart faults applied. *)
  gtm_recoveries : int;  (** GTM crash/recovery cycles. *)
  msg_drops : int;  (** Messages the faulty link dropped. *)
  msg_dups : int;  (** Messages the faulty link duplicated. *)
  retries : int;  (** Operations retransmitted after a timeout. *)
  in_doubt_resolved : int;
      (** Transactions a recovered GTM resolved from the durable log
          (completed to the logged Commit, or presumed-abort rolled
          back). *)
}

type run = {
  result : result;
  trace : Mdbs_analysis.Trace.t;
      (** The captured trace (schedules + ser events), ready for
          {!Mdbs_analysis.Certifier.certify}. *)
  sites : Mdbs_site.Local_dbms.t list;
      (** The final sites: schedules, storage, WAL — for end-state checks. *)
  attempts : Txn.t list;  (** Global transaction attempts, admission order. *)
  obs : Mdbs_obs.Obs.t;
      (** The config's bundle, filled by the run (same value; repeated here
          so callers of {!run_full} need not keep the config around). *)
}

val run : config -> Mdbs_core.Scheme.t -> result
(** Raises [Invalid_argument] if the fault plan contains GTM crashes — a
    restarted GTM needs a fresh scheme instance; use {!run_full}. *)

val run_full : config -> Mdbs_core.Registry.kind -> run
(** Fresh scheme (re-created from the registry at each GTM recovery) and
    transaction-id supply; returns the result together with the captured
    trace and the final sites. *)

val run_kind : config -> Mdbs_core.Registry.kind -> result
(** [run_full], result only. *)

val pp_result : Format.formatter -> result -> unit

val result_to_json : result -> Mdbs_analysis.Json.t
