(** Timed discrete-event simulation of the full MDBS (experiment E13).

    Where {!Driver} measures logical quantities (waits, restarts, audits)
    with instantaneous execution, this simulator adds {e time}: exponential
    operation service times at the sites, a symmetric GTM-site network
    latency, Poisson arrivals of global and local transactions, and a
    deadlock-timeout scan. It reports throughput and response times — the
    performance dimension the paper discusses qualitatively in §3
    ("delaying an operation of ser(S) may correspond to delaying the
    execution of an entire global subtransaction").

    The machinery reuses the real components: GTM1, the GTM2 engine with
    any scheme, and the per-site local DBMSs. Only the transport is
    simulated. All randomness is seeded; runs are deterministic. *)


type config = {
  workload : Workload.config;
  n_global : int;  (** Global transactions to generate. *)
  global_rate : float;  (** Global arrivals per millisecond. *)
  locals_per_site : int;  (** Local transactions per site. *)
  local_rate : float;  (** Local arrivals per millisecond, per site. *)
  service_ms : float;  (** Mean per-operation service time at a site. *)
  latency_ms : float;  (** One-way GTM-to-site message latency. *)
  deadlock_timeout_ms : float;
      (** A global transaction blocked at a site longer than this is
          presumed in a cross-site deadlock and aborted. *)
  max_restarts : int;
  seed : int;
  atomic_commit : bool;
}

val default : config

type result = {
  scheme_name : string;
  committed_global : int;
  failed_global : int;
  restarts : int;
  committed_local : int;
  aborted_local : int;
  forced_aborts : int;
  ser_waits : int;
  makespan_ms : float;  (** Time of the last event. *)
  throughput_per_s : float;  (** Committed global transactions per second. *)
  mean_response_ms : float;
      (** Mean admission-to-commit latency of committed global transactions
          (from first arrival of the logical transaction, across
          restarts). *)
  p95_response_ms : float;
  serializable : bool;
  ser_s_serializable : bool;
  races : int;
      (** Conflicting same-site access pairs the reconstructed
          happens-before relation leaves unordered
          ({!Mdbs_analysis.Race.detect} over the captured trace). *)
}

val run : config -> Mdbs_core.Scheme.t -> result

val run_kind : config -> Mdbs_core.Registry.kind -> result
(** Fresh scheme and transaction-id supply. *)

val pp_result : Format.formatter -> result -> unit
