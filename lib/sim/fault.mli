(** Declarative, seeded fault plans (the chaos layer's input language).

    The paper closes with "further work still remains on making the
    developed schemes fault-tolerant"; a fault plan describes {e which}
    faults a run must survive. Plans are consumed by {!Des} (timed mode:
    event times are simulation milliseconds) and by {!Driver} (logical
    mode: event times are wave indices). Two ingredient kinds:

    - {e timed faults}: site crash/restart, GTM crash/restart, and
      stuck-site slowdowns, each pinned to a point on the run's time (or
      round) axis;
    - {e link faults}: per-message drop / duplicate / delay probabilities
      on the GTM-site links, drawn from a dedicated seeded stream so the
      fault pattern is a pure function of the plan.

    Identical plan + identical simulation seed => identical executions. *)

open Mdbs_model

type fault =
  | Site_crash of Types.sid
      (** Crash and immediately restart the site: volatile state dies,
          storage recovers from the WAL, prepared transactions survive in
          doubt ({!Mdbs_site.Local_dbms.crash}). *)
  | Gtm_crash
      (** Crash and restart the GTM: engine, scheme data structures and
          GTM1 progress die; recovery replays the durable
          {!Mdbs_core.Gtm_log}. *)
  | Slow_site of { sid : Types.sid; factor : float; duration : float }
      (** Multiply the site's service times by [factor] for [duration]
          time units — a stuck or overloaded site. *)

type link = {
  drop : float;  (** Per-message drop probability on GTM-site links. *)
  duplicate : float;  (** Per-message duplicate-delivery probability. *)
  delay : float;  (** Per-message probability of an extra delay. *)
  delay_ms : float;  (** The extra delay, in ms. *)
}

val no_link : link

type t = {
  events : (float * fault) list;  (** Sorted by time (or round). *)
  link : link;
  link_seed : int;  (** Seed of the link-fault coin-flip stream. *)
}

val none : t
(** The empty plan: no faults; the simulators behave exactly as without a
    fault layer. *)

val is_none : t -> bool

type mix = {
  site_crashes : int;  (** Site crash/restart events to place. *)
  gtm_crashes : int;  (** GTM crash/restart events to place. *)
  slowdowns : int;  (** Stuck-site episodes to place. *)
  slow_factor : float;
  mix_link : link;
}

val default_mix : mix

val realize : mix -> seed:int -> m:int -> horizon:float -> t
(** Place the mix's timed events pseudo-randomly (from [seed]) over
    [(0, horizon)] across [m] sites, and derive the link-fault seed. The
    result is a concrete, reproducible plan. *)

val parse_mix : string -> (mix, string) result
(** Parse the CLI spec: comma-separated [key=value] entries —
    [crash=N] (site crashes), [gtm=N], [slow=N\[:FACTOR\]],
    [drop=P], [dup=P], [delay=P\[:MS\]]. Example:
    ["crash=2,gtm=1,drop=0.05,dup=0.02"]. *)

val mix_to_string : mix -> string
(** Canonical spec string; [parse_mix] round-trips it. *)

val of_spec : string -> seed:int -> m:int -> horizon:float -> (t, string) result
(** [parse_mix] followed by {!realize}. *)

val pp : Format.formatter -> t -> unit
