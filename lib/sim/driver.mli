(** End-to-end MDBS simulation (experiment E7).

    Builds the whole stack — heterogeneous local DBMSs, GTM1, GTM2 with a
    chosen scheme — and pushes a mixed workload through it: global
    transactions via the GTM, local transactions straight to their sites
    (creating the indirect conflicts of §1 that the GTM never sees). Global
    transactions aborted by a local DBMS are restarted with a fresh
    identifier, up to a bound.

    After the run the driver audits global conflict-serializability from the
    recorded local schedules and checks [ser(S)] — under Schemes 0-3 both
    must hold (Theorems 2, 3, 5, 8); under the no-control baseline they are
    expected to fail at sufficient contention. *)

type config = {
  workload : Workload.config;
  n_global : int;  (** Global transactions (logical, before restarts). *)
  locals_per_wave : int;  (** Local transactions per site between waves. *)
  wave : int;  (** Global transactions admitted per wave. *)
  max_restarts : int;  (** Restart budget per logical transaction. *)
  seed : int;
  atomic_commit : bool;
      (** Run global transactions under two-phase commit (prepare round
          before the commits) — the atomicity extension. *)
  faults : Fault.t;
      (** Fault plan in {e round-counting} mode: an event's time is a wave
          index; it is applied after that wave's submissions and before its
          pump, so a GTM crash catches admitted-but-undecided transactions
          and recovery must presume-abort them. Link faults and slowdowns
          have no meaning without a transport/time axis and are ignored
          here (use {!Des} for those). Any fault forces durable sites. *)
}

val default : config

type result = {
  scheme_name : string;
  committed_global : int;
  failed_global : int;  (** Logical transactions that exhausted restarts. *)
  restarts : int;
  committed_local : int;
  aborted_local : int;
  forced_aborts : int;  (** Cross-site deadlock victims. *)
  total_waits : int;  (** GTM2 WAIT insertions. *)
  ser_waits : int;
  scheme_steps : int;
  serializable : bool;  (** Global CSR audit over all local schedules. *)
  ser_s_serializable : bool;  (** Acyclicity of [ser(S)]. *)
  half_commits : int;
      (** Aborted attempts that committed at some site anyway — the
          atomicity anomaly two-phase commit eliminates. *)
  lint_errors : int;
      (** [Error]-severity diagnostics from the static linter over the
          captured trace. *)
  certified : bool;
      (** The static certifier discharged both obligations (CSR and
          Theorem 2) on the captured trace. *)
  site_crashes : int;  (** Site crash/restart faults applied. *)
  gtm_recoveries : int;  (** GTM crash/recovery cycles. *)
}

val run :
  ?obs:Mdbs_obs.Obs.t -> ?remake:(unit -> Mdbs_core.Scheme.t) ->
  config -> Mdbs_core.Scheme.t -> result
(** [~remake] supplies a fresh scheme instance for a GTM restarted after a
    crash; required (raises [Invalid_argument] otherwise) when the fault
    plan contains GTM crashes. [~obs] wires the run into an observability
    bundle; the logical driver has no clock, so span timestamps and wait
    durations are {e wave indices}. *)

val run_traced :
  ?obs:Mdbs_obs.Obs.t -> ?remake:(unit -> Mdbs_core.Scheme.t) ->
  config -> Mdbs_core.Scheme.t ->
  result * Mdbs_analysis.Trace.t * Mdbs_analysis.Analysis.t
(** [run] plus the captured static trace and the full analysis report —
    what the CLI's [analyze --simulate] path prints. *)

val run_kind : ?obs:Mdbs_obs.Obs.t -> config -> Mdbs_core.Registry.kind -> result
(** Fresh scheme of the given kind; resets the transaction-id supply so runs
    are comparable. *)

val pp_result : Format.formatter -> result -> unit
