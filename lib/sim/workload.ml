open Mdbs_model
module Rng = Mdbs_util.Rng

type config = {
  m : int;
  protocols : Types.protocol_kind list;
  data_per_site : int;
  d_av : int;
  ops_per_subtxn : int;
  local_ops : int;
  write_ratio : float;
  hotspot : int;
  zipf_theta : float;
  locality : float;
  site_groups : int;
  durable : bool;
  backend : [ `Mem | `Lsm of string ];
  lsm_params : Mdbs_storage_lsm.Lsm.params option;
}

let default =
  {
    m = 4;
    protocols = Types.all_protocols;
    data_per_site = 32;
    d_av = 2;
    ops_per_subtxn = 3;
    local_ops = 3;
    write_ratio = 0.5;
    hotspot = 0;
    zipf_theta = 0.0;
    locality = 0.0;
    site_groups = 0;
    durable = false;
    backend = `Mem;
    lsm_params = None;
  }

let protocol_for config sid =
  let protocols =
    match config.protocols with [] -> [ Types.Two_phase_locking ] | ps -> ps
  in
  List.nth protocols (sid mod List.length protocols)

let make_sites config =
  List.init config.m (fun sid ->
      let backend =
        match config.backend with
        | `Mem -> `Mem
        | `Lsm base -> `Lsm (Filename.concat base ("site-" ^ string_of_int sid))
      in
      Mdbs_site.Local_dbms.create ~protocol:(protocol_for config sid)
        ~durable:config.durable ~backend ?lsm_params:config.lsm_params sid)

let random_key rng config =
  let bound =
    if config.hotspot > 0 then min config.hotspot config.data_per_site
    else config.data_per_site
  in
  if config.zipf_theta > 0.0 then
    Item.Key (Mdbs_util.Zipf.sample rng ~theta:config.zipf_theta ~n:bound)
  else Item.Key (Rng.int rng bound)

let random_action rng config =
  let item = random_key rng config in
  if Rng.float rng 1.0 < config.write_ratio then Op.Write (item, 1) else Op.Read item

let data_actions rng config count = List.init count (fun _ -> random_action rng config)

let random_sites rng config d =
  let g = config.site_groups in
  if g > 1 && config.locality > 0.0 && Rng.float rng 1.0 < config.locality then begin
    (* Confine the footprint to one contiguous site group. Group k of g
       covers sites [k*m/g, (k+1)*m/g) — the same floor arithmetic as
       Shard_map, so with site_groups = gtm_shards a "local" global
       lands inside a single scheduling shard. *)
    let k = Rng.int rng g in
    let base = k * config.m / g in
    let stop = (k + 1) * config.m / g in
    let span = stop - base in
    List.map (fun i -> base + i) (Rng.sample_distinct rng (min d span) span)
  end
  else Rng.sample_distinct rng d config.m

let global_txn rng config =
  let d = min config.d_av config.m in
  let sites = random_sites rng config d in
  let per_site =
    List.map (fun sid -> (sid, data_actions rng config config.ops_per_subtxn)) sites
  in
  Txn.global ~id:(Types.fresh_tid ()) per_site

let local_txn rng config sid =
  Txn.local ~id:(Types.fresh_tid ()) ~site:sid (data_actions rng config config.local_ops)

let global_txns rng config count = List.init count (fun _ -> global_txn rng config)
