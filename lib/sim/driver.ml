open Mdbs_model
module Rng = Mdbs_util.Rng
module Gtm = Mdbs_core.Gtm
module Engine = Mdbs_core.Engine
module Registry = Mdbs_core.Registry
module Obs = Mdbs_obs.Obs

type config = {
  workload : Workload.config;
  n_global : int;
  locals_per_wave : int;
  wave : int;
  max_restarts : int;
  seed : int;
  atomic_commit : bool;
  faults : Fault.t;
}

let default =
  {
    workload = Workload.default;
    n_global = 48;
    locals_per_wave = 2;
    wave = 8;
    max_restarts = 10;
    seed = 7;
    atomic_commit = false;
    faults = Fault.none;
  }

type result = {
  scheme_name : string;
  committed_global : int;
  failed_global : int;
  restarts : int;
  committed_local : int;
  aborted_local : int;
  forced_aborts : int;
  total_waits : int;
  ser_waits : int;
  scheme_steps : int;
  serializable : bool;
  ser_s_serializable : bool;
  half_commits : int;
  lint_errors : int;
  certified : bool;
  site_crashes : int;
  gtm_recoveries : int;
}

let retry_clone txn = { txn with Txn.id = Types.fresh_tid () }

(* Capture the run as a static trace: local schedules with protocols, the
   global attempts' site-visit orders, and the realized ser(S). *)
let capture_trace gtm attempts =
  let dbmss = Gtm.sites gtm in
  let protocols =
    List.map
      (fun dbms ->
        ( Mdbs_site.Local_dbms.site_id dbms,
          Mdbs_site.Local_dbms.protocol_kind dbms ))
      dbmss
  in
  let globals =
    List.filter_map
      (fun txn ->
        if Txn.is_global txn then Some (txn.Txn.id, Txn.sites txn) else None)
      attempts
  in
  let ser_events = Ser_schedule.events (Gtm.ser_schedule gtm) in
  Mdbs_analysis.Trace.of_schedules ~protocols ~globals ~ser_events
    (List.map Mdbs_site.Local_dbms.schedule dbmss)

let run_traced ?(obs = Obs.disabled) ?remake config scheme =
  let faults_enabled = not (Fault.is_none config.faults) in
  (if
     remake = None
     && List.exists
          (fun (_, f) -> f = Fault.Gtm_crash)
          config.faults.Fault.events
   then
     invalid_arg
       "Driver: a plan with GTM crashes needs ~remake (a scheme factory)");
  let workload =
    if faults_enabled then { config.workload with Workload.durable = true }
    else config.workload
  in
  let rng = Rng.create config.seed in
  let sites = Workload.make_sites workload in
  if obs.Obs.live then
    List.iter (fun dbms -> Mdbs_site.Local_dbms.attach_obs dbms obs) sites;
  let gtm =
    ref (Gtm.create ~obs ~atomic_commit:config.atomic_commit ~scheme ~sites ())
  in
  let globals = Workload.global_txns rng workload config.n_global in
  let committed_global = ref 0 in
  let failed_global = ref 0 in
  let restarts = ref 0 in
  let committed_local = ref 0 in
  let aborted_local = ref 0 in
  let site_crashes = ref 0 in
  let gtm_recoveries = ref 0 in
  (* Engine/scheme counters lost to GTM crashes, accumulated. *)
  let past_total_waits = ref 0 in
  let past_ser_waits = ref 0 in
  let past_steps = ref 0 in
  let cur_scheme = ref scheme in
  (* In logical mode a fault's time is a wave index: wave w applies every
     plan event with time in [w, w+1) after that wave's submissions, before
     the pump — so a GTM crash catches the wave's transactions admitted but
     undecided, and recovery must presume-abort them. *)
  let wave_index = ref 0 in
  (* Logical mode has no clock; spans and wait metrics are stamped with the
     wave index, so a duration reads "waves spent waiting". *)
  Obs.set_clock obs (fun () -> float_of_int !wave_index);
  let remaining_faults = ref config.faults.Fault.events in
  let apply_wave_faults () =
    let now, later =
      List.partition (fun (at, _) -> at < float_of_int (!wave_index + 1)) !remaining_faults
    in
    remaining_faults := later;
    List.iter
      (fun (_, fault) ->
        match fault with
        | Fault.Site_crash sid ->
            incr site_crashes;
            Mdbs_site.Local_dbms.crash (Gtm.site !gtm sid)
        | Fault.Gtm_crash ->
            incr gtm_recoveries;
            let engine = Gtm.engine !gtm in
            past_total_waits := !past_total_waits + Engine.total_wait_insertions engine;
            past_ser_waits := !past_ser_waits + Engine.ser_wait_insertions engine;
            past_steps := !past_steps + !cur_scheme.Mdbs_core.Scheme.steps ();
            let next_scheme =
              match remake with Some f -> f () | None -> assert false
            in
            gtm := Gtm.recover ~old:!gtm ~scheme:next_scheme;
            cur_scheme := next_scheme
        | Fault.Slow_site _ -> (* no time axis in logical mode *) ())
      now;
    incr wave_index
  in
  (* Each pending entry is (transaction, restart budget left). *)
  let pending = ref (List.map (fun txn -> (txn, config.max_restarts)) globals) in
  let attempts = ref [] in
  let local_tids = ref [] in
  let submit_locals () =
    List.iter
      (fun site ->
        let sid = Mdbs_site.Local_dbms.site_id site in
        for _ = 1 to config.locals_per_wave do
          let txn = Workload.local_txn rng workload sid in
          local_tids := txn.Txn.id :: !local_tids;
          Gtm.submit_local !gtm txn
        done)
      sites
  in
  while !pending <> [] do
    let wave_txns, rest =
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | entries when i = 0 -> (List.rev acc, entries)
        | entry :: entries -> split (i - 1) (entry :: acc) entries
      in
      split config.wave [] !pending
    in
    pending := rest;
    submit_locals ();
    List.iter
      (fun (txn, _) ->
        attempts := txn :: !attempts;
        Gtm.submit_global !gtm txn)
      wave_txns;
    if faults_enabled then apply_wave_faults ();
    Gtm.pump !gtm;
    List.iter
      (fun (txn, budget) ->
        match Gtm.status !gtm txn.Txn.id with
        | Gtm.Committed -> incr committed_global
        | Gtm.Aborted _ when budget > 0 ->
            incr restarts;
            pending := !pending @ [ (retry_clone txn, budget - 1) ]
        | Gtm.Aborted _ -> incr failed_global
        | Gtm.Active -> failwith "Driver: transaction still active after pump")
      wave_txns
  done;
  Gtm.pump !gtm;
  if obs.Obs.live then
    Engine.close_open_spans (Gtm.engine !gtm) ~reason:"end-of-run";
  let gtm = !gtm in
  List.iter
    (fun tid ->
      match Gtm.status gtm tid with
      | Gtm.Committed -> incr committed_local
      | Gtm.Aborted _ -> incr aborted_local
      | Gtm.Active -> incr aborted_local (* stranded: count as failed *))
    !local_tids;
  let engine = Gtm.engine gtm in
  (* Atomicity audit: an aborted attempt that nevertheless committed at some
     site is a half commit (possible without two-phase commit). *)
  let half_commits =
    List.fold_left
      (fun acc txn ->
        match Gtm.status gtm txn.Txn.id with
        | Gtm.Aborted _ ->
            let committed_somewhere =
              List.exists
                (fun dbms ->
                  Mdbs_util.Iset.mem txn.Txn.id
                    (Schedule.committed (Mdbs_site.Local_dbms.schedule dbms)))
                (Gtm.sites gtm)
            in
            if committed_somewhere then acc + 1 else acc
        | Gtm.Committed | Gtm.Active -> acc)
      0 !attempts
  in
  let trace = capture_trace gtm !attempts in
  let analysis = Mdbs_analysis.Analysis.analyze trace in
  let result =
    {
      scheme_name = scheme.Mdbs_core.Scheme.name;
      committed_global = !committed_global;
      failed_global = !failed_global;
      restarts = !restarts;
      committed_local = !committed_local;
      aborted_local = !aborted_local;
      forced_aborts = Gtm.forced_aborts gtm;
      total_waits = !past_total_waits + Engine.total_wait_insertions engine;
      ser_waits = !past_ser_waits + Engine.ser_wait_insertions engine;
      scheme_steps = !past_steps + !cur_scheme.Mdbs_core.Scheme.steps ();
      serializable = Gtm.audit gtm = Serializability.Serializable;
      ser_s_serializable = Ser_schedule.is_serializable (Gtm.ser_schedule gtm);
      half_commits;
      lint_errors = Mdbs_analysis.Lint.errors analysis.Mdbs_analysis.Analysis.diagnostics;
      certified = Mdbs_analysis.Analysis.certified analysis;
      site_crashes = !site_crashes;
      gtm_recoveries = !gtm_recoveries;
    }
  in
  (result, trace, analysis)

let run ?obs ?remake config scheme =
  let result, _, _ = run_traced ?obs ?remake config scheme in
  result

let run_kind ?obs config kind =
  Types.reset_tids ();
  run ?obs ~remake:(fun () -> Registry.make kind) config (Registry.make kind)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: global %d committed / %d failed (%d restarts); local %d / %d \
     aborted; forced %d; waits %d (%d ser); steps %d; half-commits %d; CSR %b; \
     ser(S) %b; lint errors %d; certified %b@]"
    r.scheme_name r.committed_global r.failed_global r.restarts r.committed_local
    r.aborted_local r.forced_aborts r.total_waits r.ser_waits r.scheme_steps
    r.half_commits r.serializable r.ser_s_serializable r.lint_errors r.certified;
  if r.site_crashes + r.gtm_recoveries > 0 then
    Format.fprintf ppf "; faults: %d site crash(es), %d GTM recover(ies)"
      r.site_crashes r.gtm_recoveries
