open Mdbs_model
module Rng = Mdbs_util.Rng

type fault =
  | Site_crash of Types.sid
  | Gtm_crash
  | Slow_site of { sid : Types.sid; factor : float; duration : float }

type link = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_ms : float;
}

let no_link = { drop = 0.0; duplicate = 0.0; delay = 0.0; delay_ms = 8.0 }

type t = {
  events : (float * fault) list;
  link : link;
  link_seed : int;
}

let none = { events = []; link = no_link; link_seed = 0 }

let is_none t =
  t.events = []
  && t.link.drop = 0.0
  && t.link.duplicate = 0.0
  && t.link.delay = 0.0

type mix = {
  site_crashes : int;
  gtm_crashes : int;
  slowdowns : int;
  slow_factor : float;
  mix_link : link;
}

let default_mix =
  {
    site_crashes = 1;
    gtm_crashes = 0;
    slowdowns = 0;
    slow_factor = 8.0;
    mix_link = { no_link with drop = 0.05; duplicate = 0.03 };
  }

(* Events land in the middle portion of the run so there is load both
   before (state to lose) and after (recovery to exercise). *)
let event_time rng horizon =
  0.1 *. horizon +. Rng.float rng (0.7 *. horizon)

let realize mix ~seed ~m ~horizon =
  let rng = Rng.create (seed * 2654435761 + 17) in
  let events = ref [] in
  for _ = 1 to mix.site_crashes do
    events := (event_time rng horizon, Site_crash (Rng.int rng (max 1 m))) :: !events
  done;
  for _ = 1 to mix.gtm_crashes do
    events := (event_time rng horizon, Gtm_crash) :: !events
  done;
  for _ = 1 to mix.slowdowns do
    let sid = Rng.int rng (max 1 m) in
    events :=
      ( event_time rng horizon,
        Slow_site
          { sid; factor = mix.slow_factor; duration = 0.2 *. horizon } )
      :: !events
  done;
  {
    events = List.sort (fun (a, _) (b, _) -> compare a b) !events;
    link = mix.mix_link;
    link_seed = Int64.to_int (Rng.int64 rng) land 0x3FFFFFFF;
  }

let parse_mix spec =
  let parse_entry mix entry =
    match String.split_on_char '=' (String.trim entry) with
    | [ key; value ] -> (
        let num () =
          match float_of_string_opt value with
          | Some f when f >= 0.0 -> Ok f
          | _ -> Error (Printf.sprintf "bad value %S for %s" value key)
        in
        let two () =
          match String.split_on_char ':' value with
          | [ a; b ] -> (
              match (float_of_string_opt a, float_of_string_opt b) with
              | Some a, Some b when a >= 0.0 && b >= 0.0 -> Ok (a, Some b)
              | _ -> Error (Printf.sprintf "bad value %S for %s" value key))
          | [ _ ] -> Result.map (fun f -> (f, None)) (num ())
          | _ -> Error (Printf.sprintf "bad value %S for %s" value key)
        in
        match key with
        | "crash" ->
            Result.map (fun f -> { mix with site_crashes = int_of_float f }) (num ())
        | "gtm" ->
            Result.map (fun f -> { mix with gtm_crashes = int_of_float f }) (num ())
        | "slow" ->
            Result.map
              (fun (n, factor) ->
                {
                  mix with
                  slowdowns = int_of_float n;
                  slow_factor =
                    (match factor with Some f -> f | None -> mix.slow_factor);
                })
              (two ())
        | "drop" ->
            Result.map
              (fun p -> { mix with mix_link = { mix.mix_link with drop = p } })
              (num ())
        | "dup" ->
            Result.map
              (fun p -> { mix with mix_link = { mix.mix_link with duplicate = p } })
              (num ())
        | "delay" ->
            Result.map
              (fun (p, ms) ->
                {
                  mix with
                  mix_link =
                    {
                      mix.mix_link with
                      delay = p;
                      delay_ms =
                        (match ms with Some ms -> ms | None -> mix.mix_link.delay_ms);
                    };
                })
              (two ())
        | _ -> Error (Printf.sprintf "unknown fault key %S" key))
    | _ -> Error (Printf.sprintf "malformed fault entry %S (want key=value)" entry)
  in
  let empty =
    {
      site_crashes = 0;
      gtm_crashes = 0;
      slowdowns = 0;
      slow_factor = 8.0;
      mix_link = no_link;
    }
  in
  List.fold_left
    (fun acc entry ->
      Result.bind acc (fun mix ->
          if String.trim entry = "" then Ok mix else parse_entry mix entry))
    (Ok empty)
    (String.split_on_char ',' spec)

let mix_to_string mix =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  if mix.mix_link.delay > 0.0 then
    add "delay=%g:%g" mix.mix_link.delay mix.mix_link.delay_ms;
  if mix.mix_link.duplicate > 0.0 then add "dup=%g" mix.mix_link.duplicate;
  if mix.mix_link.drop > 0.0 then add "drop=%g" mix.mix_link.drop;
  if mix.slowdowns > 0 then add "slow=%d:%g" mix.slowdowns mix.slow_factor;
  if mix.gtm_crashes > 0 then add "gtm=%d" mix.gtm_crashes;
  if mix.site_crashes > 0 then add "crash=%d" mix.site_crashes;
  match !parts with [] -> "none" | parts -> String.concat "," parts

let of_spec spec ~seed ~m ~horizon =
  Result.map (fun mix -> realize mix ~seed ~m ~horizon) (parse_mix spec)

let pp_fault ppf = function
  | Site_crash sid -> Format.fprintf ppf "site-crash s%d" sid
  | Gtm_crash -> Format.fprintf ppf "gtm-crash"
  | Slow_site { sid; factor; duration } ->
      Format.fprintf ppf "slow s%d x%g for %g" sid factor duration

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (at, fault) -> Format.fprintf ppf "@%.1f %a@," at pp_fault fault)
    t.events;
  if t.link.drop > 0.0 || t.link.duplicate > 0.0 || t.link.delay > 0.0 then
    Format.fprintf ppf "link: drop %g, dup %g, delay %g (+%g ms)" t.link.drop
      t.link.duplicate t.link.delay t.link.delay_ms;
  Format.fprintf ppf "@]"
