(* mdbs: command-line front-end.

   Subcommands:
     schemes      list the GTM2 schemes
     experiments  print the reproduction tables (all or a subset)
     replay       drive a scheme with a synthetic trace, print metrics
     simulate     run the end-to-end MDBS simulation under one scheme
     des          timed discrete-event simulation
     chaos        fault-injecting runs, every one certified
     serve        open-loop parallel service runtime (OCaml 5 domains)
     loadgen      closed-loop load generation against the service runtime
     bench-compare diff two loadgen baselines, fail on throughput regressions
     analyze      statically certify and lint a recorded schedule *)

module Registry = Mdbs_core.Registry
module Replay = Mdbs_sim.Replay
module Driver = Mdbs_sim.Driver
module Workload = Mdbs_sim.Workload
module Analysis = Mdbs_analysis.Analysis
module Trace = Mdbs_analysis.Trace
open Mdbs_experiments
open Cmdliner

let scheme_conv =
  let parse s =
    match Registry.of_string (String.lowercase_ascii s) with
    | Some kind -> Ok kind
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf kind = Format.pp_print_string ppf (Registry.name kind) in
  Arg.conv (parse, print)

(* ---------------------------------------------------- observability flags *)

module Obs = Mdbs_obs.Obs

(* Shared by des/simulate/chaos: build the bundle before the run, export
   what the flags asked for afterwards. *)
let obs_flags =
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the run's spans as a Chrome trace_event JSON file \
                 (load it in Perfetto or chrome://tracing).")
  in
  let metrics_json =
    Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"Write the metrics snapshot as JSON ($(b,-) for stdout).")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Print the metrics snapshot after the run.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Self-time the GTM2 scheduler's test/action (and the chaos \
                 checks) in CPU time; print the report.")
  in
  Term.(
    const (fun trace_out metrics_json metrics profile ->
        (trace_out, metrics_json, metrics, profile))
    $ trace_out $ metrics_json $ metrics $ profile)

let make_obs ?(force_metrics = false) (trace_out, metrics_json, metrics, profile) =
  if
    (not force_metrics) && trace_out = None && metrics_json = None
    && (not metrics) && not profile
  then Obs.disabled
  else
    Obs.create ~trace:(trace_out <> None)
      ~metrics:(metrics_json <> None || metrics || force_metrics)
      ~profile ()

let export_obs (trace_out, metrics_json, metrics, profile) obs =
  (match trace_out with
  | Some file -> Mdbs_obs.Trace_event.write_file file obs.Obs.sink
  | None -> ());
  let snap_json () =
    Mdbs_util.Json.to_string (Mdbs_obs.Metrics.to_json (Mdbs_obs.Metrics.snapshot obs.Obs.metrics))
  in
  (match metrics_json with
  | Some "-" -> print_endline (snap_json ())
  | Some file ->
      let oc = open_out file in
      output_string oc (snap_json ());
      output_char oc '\n';
      close_out oc
  | None -> ());
  if metrics then
    print_endline
      (Mdbs_obs.Metrics.to_string (Mdbs_obs.Metrics.snapshot obs.Obs.metrics));
  if profile then
    print_endline (Mdbs_obs.Profile.to_string obs.Obs.profile)

(* ---------------------------------------------------------- backend flags *)

module Lsm = Mdbs_storage_lsm.Lsm

(* Shared by des/chaos/serve/loadgen: choose the site storage engine. *)
let backend_flags =
  let backend =
    Arg.(value & opt (enum [ ("mem", `Mem); ("lsm", `Lsm) ]) `Mem
         & info [ "backend" ] ~docv:"ENGINE"
             ~doc:"Site storage engine: $(b,mem) (volatile hashtable with a \
                   logical WAL) or $(b,lsm) (persistent LSM tree — \
                   memtable, leveled SSTables, group-commit WAL — rooted \
                   at $(b,--data-dir), one subdirectory per site).")
  in
  let data_dir =
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Root directory for $(b,--backend lsm) site data. Reusing a \
                 directory recovers its state (manifest + WAL replay). \
                 Default: a fresh directory under the system temp dir.")
  in
  let memtable =
    Arg.(value & opt (some int) None & info [ "lsm-memtable" ] ~docv:"N"
           ~doc:"LSM memtable flush watermark, in distinct buffered items \
                 (default 1024). Lower it below the working-set size to \
                 force SSTable flushes and compactions.")
  in
  let cache =
    Arg.(value & opt (some int) None & info [ "lsm-cache" ] ~docv:"N"
           ~doc:"LSM block-cache capacity, in blocks (default 64).")
  in
  let wal_checkpoint =
    Arg.(value & opt (some int) None & info [ "lsm-wal-checkpoint" ] ~docv:"N"
           ~doc:"WAL length, in records, that forces a checkpoint (manifest \
                 republish + log rewrite) at the next group-commit point \
                 (default 4096). Bounds the log even when the working set \
                 stays inside the memtable.")
  in
  Term.(
    const (fun backend data_dir memtable cache wal_checkpoint ->
        (backend, data_dir, memtable, cache, wal_checkpoint))
    $ backend $ data_dir $ memtable $ cache $ wal_checkpoint)

let fresh_data_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdbs-lsm-%d-%06x" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))
  in
  Lsm.mkdir_p dir;
  Printf.eprintf "backend lsm: site data under %s\n%!" dir;
  dir

(* Resolve the flag tuple into what Workload.config carries. *)
let resolve_backend (backend, data_dir, memtable, cache, wal_checkpoint) =
  let lsm_params =
    match (memtable, cache, wal_checkpoint) with
    | None, None, None -> None
    | _ ->
        Some
          {
            Lsm.default_params with
            Lsm.memtable_entries =
              Option.value memtable
                ~default:Lsm.default_params.Lsm.memtable_entries;
            cache_blocks =
              Option.value cache ~default:Lsm.default_params.Lsm.cache_blocks;
            wal_checkpoint_records =
              Option.value wal_checkpoint
                ~default:Lsm.default_params.Lsm.wal_checkpoint_records;
          }
  in
  match backend with
  | `Mem -> (`Mem, lsm_params)
  | `Lsm ->
      let dir =
        match data_dir with Some d -> d | None -> fresh_data_dir ()
      in
      (`Lsm dir, lsm_params)

(* -------------------------------------------------------- telemetry flags *)

let slo_conv =
  let parse s =
    match Mdbs_obs.Slo.parse s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf spec = Format.pp_print_string ppf spec.Mdbs_obs.Slo.src in
  Arg.conv (parse, print)

(* Shared by serve/loadgen. Any telemetry flag forces the metrics registry
   on (the time-series layer windows it), whether or not --metrics was
   passed. *)
let telemetry_flags =
  let telemetry_out =
    Arg.(value & opt (some string) None & info [ "telemetry-out" ] ~docv:"FILE"
           ~doc:"Append one JSON object per telemetry window (JSONL): \
                 counter/histogram deltas and gauge values since the \
                 previous window.")
  in
  let openmetrics_out =
    Arg.(value & opt (some string) None & info [ "openmetrics-out" ]
           ~docv:"FILE"
           ~doc:"Atomically rewrite FILE with the cumulative metrics in \
                 OpenMetrics text format on every telemetry window.")
  in
  let interval =
    Arg.(value & opt float 1000. & info [ "telemetry-interval" ] ~docv:"MS"
           ~doc:"Telemetry window length in milliseconds.")
  in
  let slos =
    Arg.(value & opt_all slo_conv [] & info [ "slo" ] ~docv:"SPEC"
           ~doc:"Service-level objective evaluated per window with \
                 burn-rate tracking, e.g. $(b,'p99(svc_response_ms) <= \
                 50') or $(b,'commit_ratio >= 0.9'). Repeatable. Any \
                 breach sets exit code 3.")
  in
  let flight_dump =
    Arg.(value & opt (some string) None & info [ "flight-dump" ] ~docv:"DIR"
           ~doc:"Arm the flight recorder: on a certification violation, \
                 site crash or SLO breach, dump the last seconds of \
                 runtime events into DIR as a Chrome trace_event file.")
  in
  Term.(
    const (fun telemetry_out openmetrics_out interval slos flight_dump ->
        (telemetry_out, openmetrics_out, interval, slos, flight_dump))
    $ telemetry_out $ openmetrics_out $ interval $ slos $ flight_dump)

let telemetry_enabled (t_out, om_out, _, slos, flight) =
  t_out <> None || om_out <> None || slos <> [] || flight <> None

(* Exit code 3: an SLO objective breached (1 = certification failure,
   2 = usage error). Certification failure wins when both occur. *)
let slo_exit = function
  | Some s when s.Mdbs_obs.Slo.worst = Mdbs_obs.Slo.Breach -> exit 3
  | _ -> ()

(* ---------------------------------------------------------------- schemes *)

let schemes_cmd =
  let doc = "List the GTM2 concurrency-control schemes" in
  let run () =
    List.iter
      (fun kind ->
        Printf.printf "%-10s %s\n" (Registry.name kind) (Registry.description kind))
      Registry.extended
  in
  Cmd.v (Cmd.info "schemes" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------ experiments *)

let experiments_cmd =
  let doc = "Print the paper-reproduction experiment tables" in
  let only =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID"
           ~doc:"Run only the experiment with this id prefix (E1..E7).")
  in
  let run only =
    let tables =
      [
        ("E1", fun () -> Complexity.sweep_dav ());
        ("E2", fun () -> Complexity.sweep_n ());
        ("E5", fun () -> Concurrency.wait_table ());
        ("E5b", fun () -> Concurrency.incomparability_witnesses ());
        ("E5c", fun () -> Concurrency.scheme3_permits_all ());
        ("E6", fun () -> Minimality.run ());
        ("E7", fun () -> Endtoend.run ());
        ("E7b", fun () -> Endtoend.violation_hunt ());
        ("E9", fun () -> Tradeoff.conservative_vs_optimistic ());
        ("E10", fun () -> Tradeoff.marking_ablation ());
        ("E11", fun () -> Tradeoff.protocol_mix ());
        ("E12", fun () -> Tradeoff.atomic_commit ());
        ("E13", fun () -> Timing.scheme_comparison ());
        ("E13b", fun () -> Timing.latency_sweep ());
        ("E14", fun () -> Chaos.table ());
        ("E15", fun () -> Obswait.wait_table ());
      ]
    in
    let wanted (id, _) =
      match only with
      | None -> true
      | Some prefix ->
          let prefix = String.uppercase_ascii prefix in
          String.length id >= String.length prefix
          && String.sub id 0 (String.length prefix) = prefix
    in
    List.iter (fun (_, table) -> Report.print (table ())) (List.filter wanted tables)
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ only)

(* ----------------------------------------------------------------- replay *)

let replay_cmd =
  let doc = "Replay a synthetic serialization-operation trace through a scheme" in
  let scheme =
    Arg.(value & opt scheme_conv Registry.S3 & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"GTM2 scheme: scheme0..scheme3 or nocontrol.")
  in
  let sites = Arg.(value & opt int 8 & info [ "sites"; "m" ] ~docv:"M") in
  let txns = Arg.(value & opt int 64 & info [ "txns" ] ~docv:"N") in
  let d_av = Arg.(value & opt int 3 & info [ "dav" ] ~docv:"D") in
  let concurrency = Arg.(value & opt int 16 & info [ "concurrency"; "n" ] ~docv:"N") in
  let latency = Arg.(value & opt int 2 & info [ "latency" ] ~docv:"L") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let open_loop =
    Arg.(value & flag & info [ "open-loop" ]
           ~doc:"Use the fixed arrival order (degree-of-concurrency mode).")
  in
  let run kind m n_txns d_av concurrency ack_latency seed open_loop =
    let config = { Replay.m; n_txns; d_av; concurrency; ack_latency } in
    let runner = if open_loop then Replay.run_fixed else Replay.run in
    let r = runner ~seed config (Registry.make kind) in
    Mdbs_util.Table.print
      ~headers:[ "metric"; "value" ]
      [
        [ "scheme"; r.Replay.scheme_name ];
        [ "transactions"; string_of_int r.Replay.txns ];
        [ "ser operations submitted"; string_of_int r.Replay.submits ];
        [ "ser operations delayed (WAIT)"; string_of_int r.Replay.ser_waits ];
        [ "total WAIT insertions"; string_of_int r.Replay.total_waits ];
        [ "scheme steps"; string_of_int r.Replay.scheme_steps ];
        [ "engine steps"; string_of_int r.Replay.engine_steps ];
        [ "steps per transaction"; Printf.sprintf "%.2f" r.Replay.steps_per_txn ];
      ]
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const run $ scheme $ sites $ txns $ d_av $ concurrency $ latency $ seed
      $ open_loop)

(* --------------------------------------------------------------- simulate *)

let simulate_cmd =
  let doc = "Run the end-to-end MDBS simulation (heterogeneous sites, mixed load)" in
  let scheme =
    Arg.(value & opt scheme_conv Registry.S3 & info [ "scheme" ] ~docv:"SCHEME")
  in
  let sites = Arg.(value & opt int 4 & info [ "sites"; "m" ] ~docv:"M") in
  let globals = Arg.(value & opt int 60 & info [ "globals" ] ~docv:"N") in
  let d_av = Arg.(value & opt int 2 & info [ "dav" ] ~docv:"D") in
  let data =
    Arg.(value & opt int 12 & info [ "data" ] ~docv:"K" ~doc:"Items per site.")
  in
  let hotspot = Arg.(value & opt int 0 & info [ "hotspot" ] ~docv:"H") in
  let seed = Arg.(value & opt int 19 & info [ "seed" ] ~docv:"SEED") in
  let run kind m n_global d_av data_per_site hotspot seed obsf =
    let config =
      {
        Driver.default with
        n_global;
        seed;
        workload = { Workload.default with m; d_av; data_per_site; hotspot };
      }
    in
    let obs = make_obs obsf in
    let r = Driver.run_kind ~obs config kind in
    Format.printf "%a@." Driver.pp_result r;
    export_obs obsf obs;
    if not r.Driver.serializable then
      print_endline "WARNING: execution was NOT globally serializable"
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ scheme $ sites $ globals $ d_av $ data $ hotspot $ seed
      $ obs_flags)

(* -------------------------------------------------------------------- des *)

let des_cmd =
  let doc = "Timed discrete-event simulation: throughput and response times" in
  let scheme =
    Arg.(value & opt scheme_conv Registry.S3 & info [ "scheme" ] ~docv:"SCHEME")
  in
  let sites = Arg.(value & opt int 4 & info [ "sites"; "m" ] ~docv:"M") in
  let globals = Arg.(value & opt int 60 & info [ "globals" ] ~docv:"N") in
  let latency = Arg.(value & opt float 2.0 & info [ "latency" ] ~docv:"MS") in
  let service = Arg.(value & opt float 1.0 & info [ "service" ] ~docv:"MS") in
  let seed = Arg.(value & opt int 23 & info [ "seed" ] ~docv:"SEED") in
  let atomic = Arg.(value & flag & info [ "2pc" ] ~doc:"Two-phase commit.") in
  let faults =
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault mix, e.g. $(b,crash=1,gtm=1,drop=0.05,dup=0.02); \
                 forces durable sites.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON.") in
  let run kind m n_global latency_ms service_ms seed atomic_commit faults json
      obsf backf =
    let backend, lsm_params = resolve_backend backf in
    let fault_plan =
      match faults with
      | None -> Mdbs_sim.Fault.none
      | Some spec -> (
          let horizon = float_of_int n_global /. 0.05 in
          match Mdbs_sim.Fault.of_spec spec ~seed ~m ~horizon with
          | Ok plan -> plan
          | Error msg ->
              prerr_endline ("mdbs des: bad --faults: " ^ msg);
              exit 2)
    in
    let obs = make_obs obsf in
    let config =
      {
        Mdbs_sim.Des.default with
        n_global;
        latency_ms;
        service_ms;
        seed;
        atomic_commit;
        faults = fault_plan;
        workload = { Workload.default with m; backend; lsm_params };
        obs;
      }
    in
    let r = Mdbs_sim.Des.run_kind config kind in
    if json then
      print_endline
        (Mdbs_analysis.Json.to_string (Mdbs_sim.Des.result_to_json r))
    else Format.printf "%a@." Mdbs_sim.Des.pp_result r;
    export_obs obsf obs
  in
  Cmd.v (Cmd.info "des" ~doc)
    Term.(
      const run $ scheme $ sites $ globals $ latency $ service $ seed $ atomic
      $ faults $ json $ obs_flags $ backend_flags)

(* ------------------------------------------------------------------ chaos *)

let chaos_cmd =
  let doc = "Fault-injecting simulation runs, each one certified" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the discrete-event simulator under a seeded fault plan (site \
         crashes, GTM crashes, lossy links, stuck sites) with two-phase \
         commit, then checks three obligations: the committed projection is \
         certified serializable, no transaction committed at one site and \
         aborted at another (and committed ones committed everywhere), and \
         every durable site's storage equals its WAL-predicted state.";
      `P
        "Default: one run of one scheme under $(b,--faults). With \
         $(b,--sweep): the full E14 sweep (schemes x mixes x seeds). Exits \
         1 if any check fails — identical spec + seed reproduce the run \
         exactly.";
    ]
  in
  let scheme =
    Arg.(value & opt scheme_conv Registry.S3 & info [ "scheme" ] ~docv:"SCHEME")
  in
  let faults =
    Arg.(value & opt string "crash=1,gtm=1,drop=0.05,dup=0.03"
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fault mix: $(b,crash=N,gtm=N,slow=N:F,drop=P,dup=P,delay=P:MS).")
  in
  let seed = Arg.(value & opt int 101 & info [ "seed" ] ~docv:"SEED") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as JSON.") in
  let sweep =
    Arg.(value & flag & info [ "sweep" ]
           ~doc:"Run the full E14 chaos sweep and print its table.")
  in
  let run kind spec seed json sweep obsf backf =
    let backend, lsm_params = resolve_backend backf in
    (* run_one/sweep derive a per-run subdirectory under the root, so runs
       never share state; here we only pick the root and the tuning. *)
    let data_dir = match backend with `Lsm dir -> Some dir | `Mem -> None in
    let with_lsm base =
      {
        base with
        Mdbs_sim.Des.workload =
          { base.Mdbs_sim.Des.workload with Workload.lsm_params };
      }
    in
    if sweep then (
      let outcomes =
        Chaos.sweep ~base:(with_lsm Chaos.base_config) ?data_dir ()
      in
      Report.print (Chaos.table ~outcomes ());
      if not (List.for_all (fun o -> Chaos.ok o.Chaos.checks) outcomes) then (
        prerr_endline "chaos: CHECK FAILED in sweep";
        exit 1))
    else
      let mix =
        match Mdbs_sim.Fault.parse_mix spec with
        | Ok mix -> mix
        | Error msg ->
            prerr_endline ("mdbs chaos: bad --faults: " ^ msg);
            exit 2
      in
      let obs = make_obs obsf in
      let o =
        Chaos.run_one
          ~base:(with_lsm { Chaos.base_config with Mdbs_sim.Des.obs })
          ~profile:obs.Obs.profile ?data_dir ~mix ~seed kind
      in
      if json then
        print_endline (Mdbs_analysis.Json.to_string (Chaos.outcome_to_json o))
      else (
        Format.printf "%a@." Mdbs_sim.Des.pp_result o.Chaos.result;
        Printf.printf
          "checks: certified %b; atomic %b; wal-consistent %b\n"
          o.Chaos.checks.Chaos.certified o.Chaos.checks.Chaos.atomic
          o.Chaos.checks.Chaos.wal_consistent);
      export_obs obsf obs;
      if not (Chaos.ok o.Chaos.checks) then (
        prerr_endline "chaos: CHECK FAILED";
        exit 1)
  in
  Cmd.v (Cmd.info "chaos" ~doc ~man)
    Term.(
      const run $ scheme $ faults $ seed $ json $ sweep $ obs_flags
      $ backend_flags)

(* ---------------------------------------------------------------- analyze *)

(* ---------------------------------------------------------- serve/loadgen *)

module Loadgen = Mdbs_svc.Loadgen
module Serve = Mdbs_svc.Serve
module Runtime = Mdbs_svc.Runtime

let certify_conv =
  let parse = function
    | "batch" -> Ok Runtime.Certify_batch
    | "live" -> Ok Runtime.Certify_live
    | "soak" -> Ok Runtime.Certify_soak
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown certify mode %S (batch|live|soak)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | Runtime.Certify_batch -> "batch"
      | Runtime.Certify_live -> "live"
      | Runtime.Certify_soak -> "soak")
  in
  Arg.conv (parse, print)

(* Flags shared by the two service-runtime commands. *)
let svc_flags =
  let sites = Arg.(value & opt int 4 & info [ "sites"; "m" ] ~docv:"M") in
  let data =
    Arg.(value & opt int 32 & info [ "data" ] ~docv:"K" ~doc:"Items per site.")
  in
  let d_av = Arg.(value & opt int 2 & info [ "dav" ] ~docv:"D") in
  let hotspot = Arg.(value & opt int 0 & info [ "hotspot" ] ~docv:"H") in
  let local =
    Arg.(value & opt float 0. & info [ "local" ] ~docv:"FRAC"
           ~doc:"Fraction of submissions that are local transactions \
                 (bypassing the GTM).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let atomic = Arg.(value & flag & info [ "2pc" ] ~doc:"Two-phase commit.") in
  let capacity =
    Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"N"
           ~doc:"GTM admission-lane bound (backpressure surface).")
  in
  let max_active =
    Arg.(value & opt int 64 & info [ "max-active" ] ~docv:"N"
           ~doc:"Concurrently admitted global transactions.")
  in
  let stall =
    Arg.(value & opt float 250. & info [ "stall-ms" ] ~docv:"MS"
           ~doc:"Hard per-transaction wait deadline: a site-blocked global \
                 past it with nothing to wound is killed itself (bounded \
                 wait).")
  in
  let wound =
    Arg.(value & opt (some float) None & info [ "wound-ms" ] ~docv:"MS"
           ~doc:"Wound window: a site-blocked global waiting this long \
                 wounds the youngest strictly-younger transaction resident \
                 at its blocked site. Default: max(4*tick, 20) ms, capped \
                 at --stall-ms.")
  in
  let tick =
    Arg.(value & opt float 5. & info [ "tick-ms" ] ~docv:"MS"
           ~doc:"Runtime ticker period: how often the stall detector \
                 re-examines blocked transactions.")
  in
  let retry_on =
    Arg.(value & flag & info [ "retry" ]
           ~doc:"Retry aborted/shed transactions with seeded exponential \
                 backoff (this is the default; the flag makes it explicit).")
  in
  let no_retry =
    Arg.(value & flag & info [ "no-retry" ]
           ~doc:"Disable client-side retry: one attempt per transaction.")
  in
  let max_attempts =
    Arg.(value & opt int 4 & info [ "max-attempts" ] ~docv:"N"
           ~doc:"Total attempts per logical transaction (retries = N-1).")
  in
  let backoff =
    Arg.(value & opt float 4. & info [ "backoff-ms" ] ~docv:"MS"
           ~doc:"First backoff window (full jitter, doubling per attempt).")
  in
  let backoff_cap =
    Arg.(value & opt float 64. & info [ "backoff-cap-ms" ] ~docv:"MS"
           ~doc:"Backoff window ceiling.")
  in
  let shed_parked =
    Arg.(value & opt (some int) None & info [ "shed-parked" ] ~docv:"N"
           ~doc:"Admission-shedding bound on the GTM's parked queue \
                 (default 8*max-active).")
  in
  let shed_blocked =
    Arg.(value & opt (some int) None & info [ "shed-blocked" ] ~docv:"N"
           ~doc:"Admission-shedding bound on the site-blocked population \
                 (default max-active).")
  in
  let certify =
    Arg.(value & opt certify_conv Runtime.Certify_batch
         & info [ "certify" ] ~docv:"MODE"
             ~doc:"Certification mode: $(b,batch) replays the captured \
                   trace post-hoc (default); $(b,live) additionally runs \
                   the always-on streaming checker with rolling \
                   checkpoints, keeping batch as a differential oracle; \
                   $(b,soak) is live with audit retention off, for \
                   unbounded runs with memory O(active window).")
  in
  let cert_every =
    Arg.(value & opt int 4096 & info [ "cert-checkpoint" ] ~docv:"N"
           ~doc:"Events per rolling checkpoint of the live certifier.")
  in
  let gtm_shards =
    Arg.(value & opt int 1 & info [ "gtm-shards" ] ~docv:"N"
           ~doc:"GTM scheduling shards: the sites are partitioned into N \
                 contiguous groups, each scheduled by its own GTM domain \
                 with a private engine; globals spanning shards take a \
                 slower coordinated path (sequencer ticket + per-shard \
                 projections). Must be between 1 and --sites.")
  in
  let zipf =
    Arg.(value & opt float 0. & info [ "zipf" ] ~docv:"THETA"
           ~doc:"Zipfian key-selection skew within each site (0 = uniform, \
                 the default; 0.99 = YCSB-like hot keys). Seeded per \
                 client substream.")
  in
  let locality =
    Arg.(value & opt float 0. & info [ "locality" ] ~docv:"FRAC"
           ~doc:"Probability that a global transaction confines its site \
                 set to one of --site-groups contiguous site groups \
                 (0 = uniform site choice). With --site-groups equal to \
                 --gtm-shards, local globals stay on the sharded fast \
                 path.")
  in
  let site_groups =
    Arg.(value & opt int 0 & info [ "site-groups" ] ~docv:"G"
           ~doc:"Number of contiguous site groups --locality confines \
                 transactions to (0 = disabled).")
  in
  Term.(
    const
      (fun m data d_av hotspot local seed atomic capacity max_active stall
           wound tick retry_on no_retry max_attempts backoff backoff_cap
           shed_parked shed_blocked certify cert_every gtm_shards zipf
           locality site_groups ->
        ignore retry_on;
        let retry =
          (* Retries are on by default; --no-retry wins over --retry. *)
          if no_retry then Mdbs_svc.Retry.off
          else
            Mdbs_svc.Retry.policy ~max_attempts ~base_ms:backoff
              ~cap_ms:backoff_cap ()
        in
        ( m, data, d_av, hotspot, local, seed, atomic, capacity, max_active,
          stall, tick, certify, cert_every,
          (retry, wound, shed_parked, shed_blocked),
          (gtm_shards, zipf, locality, site_groups) ))
    $ sites $ data $ d_av $ hotspot $ local $ seed $ atomic $ capacity
    $ max_active $ stall $ wound $ tick $ retry_on $ no_retry $ max_attempts
    $ backoff $ backoff_cap $ shed_parked $ shed_blocked $ certify
    $ cert_every $ gtm_shards $ zipf $ locality $ site_groups)

let loadgen_config ?(telemetry = (None, None, 1000., [], None))
    ?(backend = `Mem) ?lsm_params kind
    (m, data, d_av, hotspot, local, seed, atomic, capacity, max_active, stall,
     tick, certify, cert_every, (retry, wound, shed_parked, shed_blocked),
     (gtm_shards, zipf_theta, locality, site_groups))
    clients txns obs =
  let wl =
    { Workload.default with
      m; data_per_site = data; d_av; hotspot; backend; lsm_params;
      zipf_theta; locality; site_groups }
  in
  let t_out, om_out, interval, slos, flight = telemetry in
  Loadgen.config ~wl ~clients ~txns_per_client:txns ~local_fraction:local
    ~seed ~retry ~atomic_commit:atomic ~capacity ~max_active
    ~stall_timeout_ms:stall ?wound_after_ms:wound ~tick_ms:tick
    ?shed_parked ?shed_blocked ~obs ~certify
    ~cert_checkpoint_every:cert_every ?telemetry_out:t_out
    ?openmetrics_out:om_out ~telemetry_interval_ms:interval ~slos
    ?flight_dump:flight ~gtm_shards kind

let loadgen_cmd =
  let doc =
    "Closed-loop load generation against the parallel service runtime, \
     certified"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Starts the real concurrent runtime — one worker domain per site, a \
         GTM domain running admission plus the GTM2 scheduler — and drives \
         it with $(b,--clients) closed-loop client threads. Reports \
         committed throughput and end-to-end latency percentiles, and \
         certifies the captured interleaving against the paper's Theorem-2 \
         obligations (exit 1 if certification fails).";
      `P
        "$(b,--bench-out) sweeps schemes 0..3 over site counts 2 and 4 and \
         writes the results as a JSON benchmark baseline.";
    ]
  in
  let scheme =
    Arg.(value & opt scheme_conv Registry.S3 & info [ "scheme" ] ~docv:"SCHEME")
  in
  let clients = Arg.(value & opt int 32 & info [ "clients" ] ~docv:"N") in
  let txns =
    Arg.(value & opt int 25 & info [ "txns" ] ~docv:"N"
           ~doc:"Transactions per client.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let bench_out =
    Arg.(value & opt (some string) None & info [ "bench-out" ] ~docv:"FILE"
           ~doc:"Run the scheme x site-count grid and write a JSON baseline.")
  in
  let run kind svcf clients txns json bench_out obsf telemf backf =
    let backend, lsm_params = resolve_backend backf in
    let obs = make_obs ~force_metrics:(telemetry_enabled telemf) obsf in
    match bench_out with
    | Some file ->
        let m0, data, d_av, hotspot, local, seed, atomic, capacity, max_active,
            stall, tick, certify, cert_every, rob, knobs =
          svcf
        in
        ignore m0;
        let retry, _, _, _ = rob in
        let _, zipf, locality, site_groups = knobs in
        (* The grid sweeps sites 2 and 4 single-shard (the historical
           baseline shape) plus 8 sites at 1 and 4 shards, so the sharded
           fast path is gated against its own single-shard control. *)
        let grid =
          List.concat_map
            (fun k ->
              List.map
                (fun (m, shards) ->
                  (* Each grid run gets its own LSM root: reusing one would
                     recover the previous run's state. *)
                  let backend =
                    match backend with
                    | `Mem -> `Mem
                    | `Lsm base ->
                        `Lsm
                          (Filename.concat base
                             (Printf.sprintf "%s-m%d-g%d" (Registry.name k)
                                m shards))
                  in
                  let cfg =
                    loadgen_config ~backend ?lsm_params k
                      (m, data, d_av, hotspot, local, seed, atomic, capacity,
                       max_active, stall, tick, certify, cert_every, rob,
                       (shards, zipf, locality, site_groups))
                      clients txns Obs.disabled
                  in
                  Printf.eprintf "bench: %s m=%d shards=%d...\n%!"
                    (Registry.name k) m shards;
                  Loadgen.run cfg)
                [ (2, 1); (4, 1); (8, 1); (8, 4) ])
            Registry.all
        in
        let doc =
          Mdbs_util.Json.Obj
            [
              ("benchmark", Mdbs_util.Json.Str "mdbs loadgen");
              ("clients", Mdbs_util.Json.Int clients);
              ("txns_per_client", Mdbs_util.Json.Int txns);
              ("seed", Mdbs_util.Json.Int seed);
              (* Ints, not bools: bench-compare's workload-shape warning
                 reads numbers. *)
              ( "retry",
                Mdbs_util.Json.Int
                  (if Mdbs_svc.Retry.enabled retry then 1 else 0) );
              ( "max_attempts",
                Mdbs_util.Json.Int retry.Mdbs_svc.Retry.max_attempts );
              ( "runs",
                Mdbs_util.Json.List (List.map Loadgen.report_to_json grid) );
            ]
        in
        let oc = open_out file in
        output_string oc (Mdbs_util.Json.to_string doc);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s (%d runs, %s)\n" file (List.length grid)
          (if List.for_all (fun r -> r.Loadgen.certified) grid then
             "all certified"
           else "CERTIFICATION FAILURES");
        if not (List.for_all (fun r -> r.Loadgen.certified) grid) then exit 1
    | None ->
        let r =
          Loadgen.run
            (loadgen_config ~telemetry:telemf ~backend ?lsm_params kind svcf
               clients txns obs)
        in
        export_obs obsf obs;
        if json then
          print_endline
            (Mdbs_util.Json.to_string
               (Loadgen.report_to_json ~profile:obs.Obs.profile r))
        else Format.printf "%a" Loadgen.print_report r;
        if not r.Loadgen.certified then exit 1;
        slo_exit r.Loadgen.run.Mdbs_svc.Runtime.slo
  in
  Cmd.v (Cmd.info "loadgen" ~doc ~man)
    Term.(
      const run $ scheme $ svc_flags $ clients $ txns $ json $ bench_out
      $ obs_flags $ telemetry_flags $ backend_flags)

let serve_cmd =
  let doc = "Open-loop service mode: Poisson arrivals, admission control" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the parallel service runtime under open-loop Poisson arrivals \
         at $(b,--rate) transactions per second for $(b,--duration) \
         seconds. When the offered load exceeds what the scheme sustains, \
         the bounded admission lane refuses the excess (counted as \
         rejected) instead of queueing without bound. Progress lines show \
         live stall attribution from the scheme's own explain hook; the \
         final run is certified like every other.";
    ]
  in
  let scheme =
    Arg.(value & opt scheme_conv Registry.S3 & info [ "scheme" ] ~docv:"SCHEME")
  in
  let rate =
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"TPS"
           ~doc:"Offered arrival rate (Poisson).")
  in
  let duration =
    Arg.(value & opt float 5. & info [ "duration" ] ~docv:"S")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress lines.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.") in
  let run kind svcf rate duration quiet json obsf telemf backf =
    let backend, lsm_params = resolve_backend backf in
    let m, data, d_av, hotspot, local, seed, atomic, capacity, max_active,
        stall, tick, certify, cert_every, (retry, wound, shed_p, shed_b),
        (gtm_shards, zipf_theta, locality, site_groups) =
      svcf
    in
    let wl =
      { Workload.default with
        m; data_per_site = data; d_av; hotspot; backend; lsm_params;
        zipf_theta; locality; site_groups }
    in
    let obs = make_obs ~force_metrics:(telemetry_enabled telemf) obsf in
    let t_out, om_out, interval, slos, flight = telemf in
    let s =
      Serve.run ~quiet
        (Serve.config ~wl ~rate ~duration_s:duration ~local_fraction:local
           ~seed ~retry ~atomic_commit:atomic ~capacity ~max_active
           ~stall_timeout_ms:stall ?wound_after_ms:wound ~tick_ms:tick
           ?shed_parked:shed_p ?shed_blocked:shed_b ~obs ~certify
           ~cert_checkpoint_every:cert_every ?telemetry_out:t_out
           ?openmetrics_out:om_out ~telemetry_interval_ms:interval ~slos
           ?flight_dump:flight ~gtm_shards kind)
    in
    export_obs obsf obs;
    let res = s.Serve.run in
    let st = res.Mdbs_svc.Runtime.run_stats in
    if json then
      print_endline
        (Mdbs_util.Json.to_string
           (Mdbs_util.Json.Obj
              [
                ("scheme", Mdbs_util.Json.Str res.Mdbs_svc.Runtime.scheme_name);
                ( "backend",
                  Mdbs_util.Json.Str
                    (match backend with `Mem -> "mem" | `Lsm _ -> "lsm") );
                ( "durable_bytes",
                  Mdbs_util.Json.Int res.Mdbs_svc.Runtime.durable_bytes );
                ("offered", Mdbs_util.Json.Int s.Serve.offered);
                ("accepted", Mdbs_util.Json.Int s.Serve.accepted);
                ( "rejected_backpressure",
                  Mdbs_util.Json.Int s.Serve.rejected_backpressure );
                ("shed", Mdbs_util.Json.Int s.Serve.shed);
                ("retries", Mdbs_util.Json.Int s.Serve.retries);
                ("committed", Mdbs_util.Json.Int st.Mdbs_svc.Runtime.committed);
                ("aborted", Mdbs_util.Json.Int st.Mdbs_svc.Runtime.aborted);
                ("commit_ratio", Mdbs_util.Json.Float s.Serve.commit_ratio);
                ("elapsed_s", Mdbs_util.Json.Float s.Serve.elapsed_s);
                ("goodput_txn_s", Mdbs_util.Json.Float s.Serve.goodput);
                ( "force_aborts",
                  Mdbs_util.Json.Int st.Mdbs_svc.Runtime.force_aborts );
                ("wounds", Mdbs_util.Json.Int st.Mdbs_svc.Runtime.wounds);
                ( "aborts_by_cause",
                  Mdbs_util.Json.Obj
                    (List.map
                       (fun (c, n) -> (c, Mdbs_util.Json.Int n))
                       st.Mdbs_svc.Runtime.abort_causes) );
                ( "certified",
                  Mdbs_util.Json.Bool res.Mdbs_svc.Runtime.certified );
                ( "live_certification",
                  match res.Mdbs_svc.Runtime.live with
                  | Some ls -> Mdbs_svc.Live_cert.summary_to_json ls
                  | None -> Mdbs_util.Json.Null );
                ( "slo",
                  match res.Mdbs_svc.Runtime.slo with
                  | Some sl -> Mdbs_obs.Slo.summary_to_json sl
                  | None -> Mdbs_util.Json.Null );
                ( "flight_dumps",
                  Mdbs_util.Json.List
                    (List.map
                       (fun (reason, path) ->
                         Mdbs_util.Json.Obj
                           [
                             ("reason", Mdbs_util.Json.Str reason);
                             ("path", Mdbs_util.Json.Str path);
                           ])
                       res.Mdbs_svc.Runtime.flight_dumps) );
                ( "profile",
                  if Mdbs_obs.Profile.enabled obs.Obs.profile then
                    Mdbs_obs.Profile.to_json obs.Obs.profile
                  else Mdbs_util.Json.Null );
              ]))
    else
      Printf.printf
        "scheme %s: offered %d, committed %d (ratio %.3f, goodput %.1f \
         txn/s); accepted %d, rejected %d (backpressure), shed %d, retries \
         %d; aborted %d (%d forced, %d wounds); certified %s\n"
        res.Mdbs_svc.Runtime.scheme_name s.Serve.offered
        st.Mdbs_svc.Runtime.committed s.Serve.commit_ratio s.Serve.goodput
        s.Serve.accepted s.Serve.rejected_backpressure s.Serve.shed
        s.Serve.retries st.Mdbs_svc.Runtime.aborted
        st.Mdbs_svc.Runtime.force_aborts st.Mdbs_svc.Runtime.wounds
        (if res.Mdbs_svc.Runtime.certified then "yes" else "NO");
    (if not json then
       match res.Mdbs_svc.Runtime.slo with
       | None -> ()
       | Some sl ->
           Printf.printf "SLO: worst %s\n"
             (Mdbs_obs.Slo.verdict_to_string sl.Mdbs_obs.Slo.worst);
           List.iter
             (fun o ->
               Printf.printf "  %s — %s (%d/%d bad windows, %d breach)\n"
                 o.Mdbs_obs.Slo.o_spec.Mdbs_obs.Slo.src
                 (Mdbs_obs.Slo.verdict_to_string o.Mdbs_obs.Slo.o_worst)
                 o.Mdbs_obs.Slo.o_bad o.Mdbs_obs.Slo.o_windows
                 o.Mdbs_obs.Slo.o_breaches)
             sl.Mdbs_obs.Slo.objectives);
    if not res.Mdbs_svc.Runtime.certified then exit 1;
    slo_exit res.Mdbs_svc.Runtime.slo
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ scheme $ svc_flags $ rate $ duration $ quiet $ json
      $ obs_flags $ telemetry_flags $ backend_flags)

(* ---------------------------------------------------------------- recover *)

let recover_cmd =
  let doc = "Recover LSM site directories offline and audit them against \
             their WALs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Opens every $(b,site-*) subdirectory under $(b,--data-dir) the way \
         a restarting site would — manifest runs, WAL-suffix redo, loser \
         undo with logged compensation — then audits the result: the state \
         predicted by replaying the on-disk WAL over the manifest's runs \
         (the log is checkpointed at each flush, so it carries unresolved \
         transactions plus the post-flush suffix) must equal the \
         recovered storage, item for item. Lists in-doubt (prepared but \
         unresolved) transactions left for the GTM's decision record. \
         Exits 1 on any mismatch or unreadable site, 2 when the directory \
         holds no sites.";
      `P
        "Safe to run after $(b,kill -9): recovery is idempotent, so a crash \
         during recovery itself re-recovers cleanly.";
    ]
  in
  let data_dir =
    Arg.(required & opt (some dir) None & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Root directory written by a $(b,--backend lsm) run.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the audit as JSON.")
  in
  let run data_dir json =
    let module Gw = Mdbs_storage_lsm.Group_wal in
    let module Json = Mdbs_util.Json in
    let site_dirs =
      Sys.readdir data_dir |> Array.to_list |> List.sort compare
      |> List.filter (fun d ->
             String.length d > 5
             && String.sub d 0 5 = "site-"
             && Sys.is_directory (Filename.concat data_dir d))
    in
    (* A single-site store (the directory itself holds wal.log) counts. *)
    let site_dirs =
      if site_dirs = [] && Sys.file_exists (Filename.concat data_dir "wal.log")
      then [ "." ]
      else site_dirs
    in
    if site_dirs = [] then begin
      prerr_endline
        ("mdbs recover: no site-* directories (or wal.log) under " ^ data_dir);
      exit 2
    end;
    let audit sub =
      let dir = Filename.concat data_dir sub in
      match
        let t = Lsm.open_dir dir in
        let items = Lsm.items t in
        let in_doubt = Lsm.recovered_in_doubt t in
        let st = Lsm.stats t in
        Lsm.close t;
        (* Audit after recovery so the predictor sees the compensation
           records recovery itself just logged. *)
        let records, _ = Gw.read_file (Filename.concat dir "wal.log") in
        let predicted = Lsm.predicted_items dir in
        let clean l = List.sort compare (List.filter (fun (_, v) -> v <> 0) l) in
        (clean predicted = clean items, items, in_doubt, st,
         List.length records)
      with
      | ok, items, in_doubt, st, wal_records ->
          `Audited (sub, ok, items, in_doubt, st, wal_records)
      | exception e -> `Failed (sub, Printexc.to_string e)
    in
    let results = List.map audit site_dirs in
    let all_ok =
      List.for_all
        (function `Audited (_, ok, _, _, _, _) -> ok | `Failed _ -> false)
        results
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("data_dir", Json.Str data_dir);
                ("ok", Json.Bool all_ok);
                ( "sites",
                  Json.List
                    (List.map
                       (function
                         | `Audited (sub, ok, items, in_doubt, st, wal_records)
                           ->
                             Json.Obj
                               [
                                 ("site", Json.Str sub);
                                 ("wal_matches_storage", Json.Bool ok);
                                 ("items", Json.Int (List.length items));
                                 ("wal_records", Json.Int wal_records);
                                 ( "in_doubt",
                                   Json.List
                                     (List.map
                                        (fun tid -> Json.Int tid)
                                        in_doubt) );
                                 ("l0_runs", Json.Int st.Lsm.l0_runs);
                                 ("l1_runs", Json.Int st.Lsm.l1_runs);
                                 ( "durable_bytes",
                                   Json.Int st.Lsm.bytes_durable );
                               ]
                         | `Failed (sub, msg) ->
                             Json.Obj
                               [
                                 ("site", Json.Str sub);
                                 ("error", Json.Str msg);
                               ])
                       results) );
              ]))
    else
      List.iter
        (function
          | `Audited (sub, ok, items, in_doubt, st, wal_records) ->
              Printf.printf
                "%s: %s — %d items, %d WAL records, %d+%d runs (L0+L1)%s\n"
                sub
                (if ok then "recovered, WAL-consistent"
                 else "MISMATCH (storage <> WAL-predicted state)")
                (List.length items) wal_records st.Lsm.l0_runs st.Lsm.l1_runs
                (match in_doubt with
                | [] -> ""
                | tids ->
                    Printf.sprintf "; in-doubt: %s"
                      (String.concat ","
                         (List.map string_of_int tids)))
          | `Failed (sub, msg) -> Printf.printf "%s: FAILED — %s\n" sub msg)
        results;
    if not all_ok then exit 1
  in
  Cmd.v (Cmd.info "recover" ~doc ~man) Term.(const run $ data_dir $ json)

(* ---------------------------------------------------------- bench-compare *)

let bench_compare_cmd =
  let doc = "Compare two loadgen benchmark baselines; fail on regressions" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads two JSON baselines produced by $(b,mdbs loadgen --bench-out), \
         matches runs by (scheme, sites, backend, gtm_shards), and reports \
         the throughput, goodput and commit-ratio delta of every matched \
         run. Runs are never gated across differing shard counts — a \
         sharded run only compares against a baseline row with the same \
         shard count (baselines written before the shard axis existed mean \
         one shard). Exits 1 when \
         any matched run's throughput or goodput regressed by more than \
         $(b,--threshold) percent (default 10), when its commit ratio \
         dropped by more than $(b,--max-commit-drop) percentage points \
         (default 15), or when a run in the old baseline has no \
         counterpart in the new one; exits 2 on a file or parse error. Use \
         it as a CI guard against accidental hot-path regressions — a \
         faster scheduler that aborts its way to throughput is not an \
         optimization, which is why the commit-ratio and goodput gates \
         exist. Machine-independent gating: commit ratio is deterministic \
         under a seed, so CI can hard-gate on --max-commit-drop with a \
         huge --threshold to neutralize runner noise.";
    ]
  in
  let old_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
  in
  let threshold =
    Arg.(value & opt float 10. & info [ "threshold" ] ~docv:"PCT"
           ~doc:"Maximum tolerated throughput drop, in percent.")
  in
  let max_commit_drop =
    Arg.(value & opt float 15. & info [ "max-commit-drop" ] ~docv:"PP"
           ~doc:"Maximum tolerated commit-ratio drop, in percentage points \
                 (committed/submitted, old vs new).")
  in
  let timeseries =
    Arg.(value & opt (some file) None & info [ "timeseries" ] ~docv:"FILE"
           ~doc:"Telemetry JSONL (from $(b,--telemetry-out)) to gate on \
                 worst-window tail latency; requires \
                 $(b,--max-window-p99).")
  in
  let max_window_p99 =
    Arg.(value & opt (some float) None & info [ "max-window-p99" ] ~docv:"MS"
           ~doc:"Fail when any telemetry window's p99 of the gated \
                 histogram exceeds MS — catches transient stalls that an \
                 end-of-run percentile averages away.")
  in
  let window_metric =
    Arg.(value & opt string "svc_response_ms" & info [ "window-metric" ]
           ~docv:"NAME"
           ~doc:"Histogram the $(b,--max-window-p99) gate reads.")
  in
  let run old_file new_file threshold max_commit_drop timeseries
      max_window_p99 window_metric =
    let module Json = Mdbs_util.Json in
    let fail_usage msg =
      prerr_endline ("mdbs bench-compare: " ^ msg);
      exit 2
    in
    let load file =
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Json.of_string s with
      | Ok doc -> doc
      | Error msg -> fail_usage (Printf.sprintf "%s: %s" file msg)
    in
    (* One baseline's runs as ((scheme, sites, backend, shards),
       (throughput, goodput, commit ratio), certified). Baselines written
       before the commit counters existed get ratio 1.0 (no gate); ones
       without a goodput field fall back to throughput (pre-retry
       baselines, where every settled attempt was a logical transaction);
       ones without a backend field predate the storage axis and mean
       "mem"; ones without a gtm_shards field predate the shard axis and
       mean 1. Matching on backend and shard count keeps unlike runs in
       separate columns — a persistent engine is never gated against an
       in-memory baseline, and a sharded scheduler is never gated against
       a single-shard one. *)
    let runs file doc =
      match Option.bind (Json.member "runs" doc) Json.list_val with
      | None -> fail_usage (file ^ ": no \"runs\" array")
      | Some items ->
          List.map
            (fun item ->
              let str k = Option.bind (Json.member k item) Json.string_val in
              let num k = Option.bind (Json.member k item) Json.number in
              let bool k = Option.bind (Json.member k item) Json.bool_val in
              match (str "scheme", num "sites", num "throughput_txn_s") with
              | Some scheme, Some sites, Some tput ->
                  let ratio =
                    match (num "committed", num "submitted") with
                    | Some c, Some s when s > 0. -> c /. s
                    | _ -> 1.
                  in
                  let goodput =
                    match num "goodput_txn_s" with
                    | Some g -> g
                    | None -> tput
                  in
                  let backend =
                    Option.value ~default:"mem" (str "backend")
                  in
                  let shards =
                    match num "gtm_shards" with
                    | Some s -> int_of_float s
                    | None -> 1
                  in
                  ( (scheme, int_of_float sites, backend, shards),
                    (tput, goodput, ratio),
                    Option.value ~default:false (bool "certified") )
              | _ -> fail_usage (file ^ ": run missing scheme/sites/throughput"))
            items
    in
    let old_doc = load old_file and new_doc = load new_file in
    (* Throughput only compares within one workload shape: flag baselines
       generated with different sweep parameters. *)
    List.iter
      (fun k ->
        let v doc = Option.bind (Json.member k doc) Json.number in
        match (v old_doc, v new_doc) with
        | Some a, Some b when a <> b ->
            Printf.printf
              "warning: %s differs between baselines (%g vs %g) — deltas \
               compare different workloads\n"
              k a b
        | _ -> ())
      [ "clients"; "txns_per_client"; "seed"; "retry"; "max_attempts" ];
    let old_runs = runs old_file old_doc in
    let new_runs = runs new_file new_doc in
    let regressions = ref 0 in
    let rows =
      List.filter_map
        (fun (key, (old_tput, old_good, old_ratio), _) ->
          let scheme, sites, backend, shards = key in
          match
            List.find_opt (fun (k, _, _) -> k = key) new_runs
          with
          | None ->
              incr regressions;
              Some [ scheme; string_of_int sites; backend;
                     string_of_int shards;
                     Printf.sprintf "%.2f" old_tput; "-"; "-"; "-"; "-";
                     "MISSING" ]
          | Some (_, (new_tput, new_good, new_ratio), certified) ->
              let pct old_v new_v =
                if old_v > 0. then (new_v -. old_v) /. old_v *. 100. else 0.
              in
              let delta_pct = pct old_tput new_tput in
              let good_pct = pct old_good new_good in
              let commit_drop_pp = (old_ratio -. new_ratio) *. 100. in
              let tput_regressed = delta_pct < -.threshold in
              let good_regressed = good_pct < -.threshold in
              let commit_regressed = commit_drop_pp > max_commit_drop in
              if tput_regressed || good_regressed || commit_regressed then
                incr regressions;
              Some
                [ scheme; string_of_int sites; backend;
                  string_of_int shards;
                  Printf.sprintf "%.2f" old_tput;
                  Printf.sprintf "%.2f" new_tput;
                  Printf.sprintf "%+.1f%%" delta_pct;
                  Printf.sprintf "%+.1f%%" good_pct;
                  Printf.sprintf "%+.1fpp" (-.commit_drop_pp);
                  (if tput_regressed then "REGRESSED"
                   else if good_regressed then "GOODPUT-DROP"
                   else if commit_regressed then "COMMIT-DROP"
                   else if not certified then "UNCERTIFIED"
                   else "ok") ])
        old_runs
    in
    if rows = [] then fail_usage (old_file ^ ": no runs to compare");
    Mdbs_util.Table.print
      ~headers:
        [ "scheme"; "sites"; "backend"; "shards"; "old txn/s"; "new txn/s";
          "delta"; "goodput"; "commit"; "verdict" ]
      rows;
    (* Certification failures in the new baseline fail the comparison too:
       a fast but uncertified run is not an optimization. *)
    let uncertified =
      List.filter (fun (_, _, c) -> not c) new_runs |> List.length
    in
    if uncertified > 0 then
      Printf.printf "%d new run(s) uncertified\n" uncertified;
    (* Worst-window tail gate: every telemetry window's precomputed p99
       must clear the cap, so a transient stall that an end-of-run
       percentile would average away still fails the comparison. *)
    let window_failed =
      match (timeseries, max_window_p99) with
      | None, None -> false
      | Some _, None -> fail_usage "--timeseries requires --max-window-p99"
      | None, Some _ -> fail_usage "--max-window-p99 requires --timeseries"
      | Some file, Some cap ->
          let worst = ref neg_infinity in
          let windows = ref 0 in
          let ic =
            try open_in file with Sys_error msg -> fail_usage msg
          in
          (try
             while true do
               let line = input_line ic in
               if String.trim line <> "" then
                 match Json.of_string line with
                 | Error msg ->
                     fail_usage (Printf.sprintf "%s: %s" file msg)
                 | Ok w -> (
                     match
                       Option.bind (Json.member "hists" w) Json.list_val
                     with
                     | None -> ()
                     | Some hs ->
                         List.iter
                           (fun h ->
                             match
                               Option.bind (Json.member "name" h)
                                 Json.string_val
                             with
                             | Some n when n = window_metric -> (
                                 incr windows;
                                 match
                                   Option.bind (Json.member "p99" h)
                                     Json.number
                                 with
                                 | Some p -> if p > !worst then worst := p
                                 | None -> ())
                             | _ -> ())
                           hs)
             done
           with End_of_file -> close_in ic);
          if !windows = 0 then begin
            (* An empty gate is a failed gate: a run that never observed
               the histogram proves nothing about its tail. *)
            Printf.printf "window gate: no %s windows in %s — FAILED\n"
              window_metric file;
            true
          end
          else begin
            let failed = !worst > cap in
            Printf.printf
              "window gate: worst %s p99 %.2f ms across %d windows (cap \
               %.2f ms) — %s\n"
              window_metric !worst !windows cap
              (if failed then "FAILED" else "ok");
            failed
          end
    in
    if !regressions > 0 || uncertified > 0 || window_failed then (
      if !regressions > 0 then
        Printf.printf "bench-compare: %d regression(s) beyond %.0f%%\n"
          !regressions threshold;
      exit 1)
    else Printf.printf "bench-compare: no regressions beyond %.0f%%\n" threshold
  in
  Cmd.v (Cmd.info "bench-compare" ~doc ~man)
    Term.(
      const run $ old_file $ new_file $ threshold $ max_commit_drop
      $ timeseries $ max_window_p99 $ window_metric)

let analyze_cmd =
  let doc = "Statically certify and lint a recorded global schedule" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the static analysis pass over a trace without re-executing \
         it: the certifier checks global conflict serializability and the \
         paper's Theorem-2 obligations, emitting a machine-checkable \
         certificate or a counterexample cycle with concrete conflicting \
         operation pairs; the linter reports typed diagnostics (MA001..MA005).";
      `P
        "The trace comes from one of three sources: $(b,--trace) reads the \
         textual format from a file, $(b,--simulate) captures one from the \
         end-to-end simulation, $(b,--replay) captures the realized ser(S) \
         from an engine-level replay.";
      `P "Exits 1 when the analysis reports any error, 2 on a parse error.";
    ]
  in
  let trace_file =
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Analyze a textual trace file.")
  in
  let simulate =
    Arg.(value & flag & info [ "simulate" ]
           ~doc:"Capture and analyze a trace from the end-to-end simulation.")
  in
  let replay =
    Arg.(value & flag & info [ "replay" ]
           ~doc:"Capture and analyze the realized ser(S) of an engine-level \
                 replay.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let incremental =
    Arg.(value & flag & info [ "incremental" ]
           ~doc:"Also stream the trace through the incremental certifier \
                 and report its verdict, window statistics and agreement \
                 with the batch pass (a differential check; disagreement \
                 exits 1).")
  in
  let scheme =
    Arg.(value & opt scheme_conv Registry.S3 & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Scheme for the --simulate/--replay sources.")
  in
  let sites = Arg.(value & opt int 4 & info [ "sites"; "m" ] ~docv:"M") in
  let globals = Arg.(value & opt int 60 & info [ "globals" ] ~docv:"N") in
  let txns = Arg.(value & opt int 64 & info [ "txns" ] ~docv:"N") in
  let d_av = Arg.(value & opt int 2 & info [ "dav" ] ~docv:"D") in
  let seed = Arg.(value & opt int 19 & info [ "seed" ] ~docv:"SEED") in
  let run trace_file simulate replay json incremental kind m n_global n_txns
      d_av seed =
    let fail_usage msg =
      prerr_endline ("mdbs analyze: " ^ msg);
      exit 2
    in
    let trace =
      match (trace_file, simulate, replay) with
      | Some file, false, false -> (
          match Trace.of_file file with
          | Ok trace -> trace
          | Error msg -> fail_usage msg)
      | None, true, false ->
          Mdbs_model.Types.reset_tids ();
          let config =
            {
              Driver.default with
              n_global;
              seed;
              workload = { Workload.default with m; d_av };
            }
          in
          let _, trace, _ = Driver.run_traced config (Registry.make kind) in
          trace
      | None, false, true ->
          let config =
            { Replay.default with m; n_txns; d_av = max 1 d_av }
          in
          (Replay.run ~seed config (Registry.make kind)).Replay.trace
      | None, false, false ->
          fail_usage "one of --trace FILE, --simulate, --replay is required"
      | _ -> fail_usage "--trace, --simulate and --replay are exclusive"
    in
    let report = Analysis.analyze trace in
    let inc =
      if incremental then
        Some (Mdbs_analysis.Incremental.of_trace trace)
      else None
    in
    (if json then
       let report_json = Analysis.to_json report in
       match inc with
       | None -> print_endline (Mdbs_analysis.Json.to_string report_json)
       | Some i ->
           let module I = Mdbs_analysis.Incremental in
           let st = I.stats i in
           print_endline
             (Mdbs_analysis.Json.to_string
                (Mdbs_analysis.Json.Obj
                   [
                     ("report", report_json);
                     ( "incremental",
                       Mdbs_analysis.Json.Obj
                         [
                           ("violated", Mdbs_analysis.Json.Bool (I.violated i));
                           ( "agrees_with_batch",
                             Mdbs_analysis.Json.Bool
                               (I.violated i = not (Analysis.certified report)) );
                           ("events", Mdbs_analysis.Json.Int st.I.events);
                           ( "peak_live_txns",
                             Mdbs_analysis.Json.Int st.I.peak_live_txns );
                           ("stable_csr", Mdbs_analysis.Json.Int st.I.stable_csr);
                           ("stable_t2", Mdbs_analysis.Json.Int st.I.stable_t2);
                           ("live_edges", Mdbs_analysis.Json.Int st.I.live_edges);
                         ] );
                   ]))
     else begin
       Format.printf "%a@." Analysis.pp report;
       match inc with
       | None -> ()
       | Some i ->
           let module I = Mdbs_analysis.Incremental in
           let st = I.stats i in
           Printf.printf
             "incremental: %s (%s batch); %d events, peak window %d, stable \
              %d/%d (csr/t2), %d live edges\n"
             (if I.violated i then "violation" else "clean")
             (if I.violated i = not (Analysis.certified report) then
                "agrees with"
              else "DISAGREES with")
             st.I.events st.I.peak_live_txns st.I.stable_csr st.I.stable_t2
             st.I.live_edges
     end);
    let disagrees =
      match inc with
      | Some i ->
          Mdbs_analysis.Incremental.violated i
          <> not (Analysis.certified report)
      | None -> false
    in
    if Analysis.errors report > 0 || disagrees then exit 1
  in
  Cmd.v (Cmd.info "analyze" ~doc ~man)
    Term.(
      const run $ trace_file $ simulate $ replay $ json $ incremental $ scheme
      $ sites $ globals $ txns $ d_av $ seed)

let () =
  let doc = "Multidatabase concurrency control (SIGMOD 1992) reproduction" in
  let info = Cmd.info "mdbs" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            schemes_cmd; experiments_cmd; replay_cmd; simulate_cmd; des_cmd;
            chaos_cmd; serve_cmd; loadgen_cmd; bench_compare_cmd; recover_cmd;
            analyze_cmd;
          ]))
