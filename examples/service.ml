(* The parallel service runtime, end to end.

   Three heterogeneous sites run as real OCaml 5 domains, each owning its
   unchanged local DBMS; the GTM runs in its own domain (GTM1 admission +
   the Scheme-3 GTM2 scheduler); a handful of client threads submit a
   mixed workload — global transactions through the GTM, local ones
   straight to their site, exactly the paper's pre-existing local
   applications. When the run drains, the realized interleaving is
   certified against the Theorem-2 obligations and the metrics snapshot is
   printed.

     dune exec examples/service.exe *)

open Mdbs_model
module Local_dbms = Mdbs_site.Local_dbms
module Registry = Mdbs_core.Registry
module Gtm = Mdbs_core.Gtm
module Runtime = Mdbs_svc.Runtime
module Promise = Mdbs_svc.Promise
module Workload = Mdbs_sim.Workload
module Analysis = Mdbs_analysis.Analysis
module Rng = Mdbs_util.Rng
module Obs = Mdbs_obs.Obs

let () =
  Types.reset_tids ();
  (* Three autonomous sites, three different local protocols — the
     heterogeneity is the point of the paper. *)
  let sites =
    [
      Local_dbms.create ~protocol:Types.Two_phase_locking 0;
      Local_dbms.create ~protocol:Types.Timestamp_ordering 1;
      Local_dbms.create ~protocol:Types.Serialization_graph_testing 2;
    ]
  in
  let obs = Obs.create ~metrics:true () in
  let rt =
    Runtime.start
      (Runtime.config ~obs ~scheme:(Registry.make Registry.S3) ~sites ())
  in
  Printf.printf "service up: %d site domains + GTM domain, scheme %s\n%!"
    (Runtime.n_sites rt) (Runtime.scheme_name rt);

  (* Four clients, mixed workload: 3 global transactions and 2 local ones
     each, every client on its own independent random substream. *)
  let wl =
    { Workload.default with Workload.m = 3; data_per_site = 12; d_av = 2 }
  in
  let master = Rng.create 2026 in
  let client i =
    let rng = Rng.substream master i in
    let outcomes = ref [] in
    for _ = 1 to 3 do
      let p = Runtime.submit_global rt (Workload.global_txn rng wl) in
      outcomes := ("global", Promise.await p) :: !outcomes
    done;
    for _ = 1 to 2 do
      let sid = Rng.int rng 3 in
      let p = Runtime.submit_local rt (Workload.local_txn rng wl sid) in
      outcomes := ("local@" ^ string_of_int sid, Promise.await p) :: !outcomes
    done;
    (i, List.rev !outcomes)
  in
  let threads = List.init 4 (fun i -> Thread.create client i) in
  let results = List.map Thread.join threads in
  ignore results;

  (* Drain, capture the real interleaving, certify it. *)
  let r = Runtime.shutdown rt in
  let st = r.Runtime.run_stats in
  Printf.printf "drained: %d admitted, %d committed, %d aborted (%d forced)\n"
    st.Runtime.admitted st.Runtime.committed st.Runtime.aborted
    st.Runtime.force_aborts;
  List.iter
    (fun (sid, n) -> Printf.printf "  site %d handled %d requests\n" sid n)
    st.Runtime.ops_per_site;
  Printf.printf "certified: %s (%d violations) in %.0f ms\n"
    (if r.Runtime.certified then "yes" else "NO")
    (Analysis.errors r.Runtime.analysis)
    r.Runtime.elapsed_ms;
  print_newline ();
  print_endline
    (Mdbs_obs.Metrics.to_string (Mdbs_obs.Metrics.snapshot obs.Obs.metrics));
  if not r.Runtime.certified then exit 1
