(* Chaos: the coordinator half of the paper's future work.

   Three scenes. First, a global transfer runs under two-phase commit and
   we read the GTM's durable log — the coordinator's memory of admissions,
   dispatch progress and the commit decision. Second, the GTM crashes: an
   admitted-but-undecided transaction is presumed aborted, while an
   in-doubt participant — prepared at a site that itself crashed — is
   completed to the logged Commit by the recovered GTM. Third, a whole
   timed simulation runs under a seeded fault plan (site crash, GTM crash,
   lossy links) and the run's committed projection is certified
   serializable, atomic, and WAL-consistent.

     dune exec examples/chaos.exe *)

open Mdbs_model
module Gtm = Mdbs_core.Gtm
module Gtm_log = Mdbs_core.Gtm_log
module Registry = Mdbs_core.Registry
module Local_dbms = Mdbs_site.Local_dbms
module Des = Mdbs_sim.Des
module Fault = Mdbs_sim.Fault
module Chaos = Mdbs_experiments.Chaos

let x0 = Item.Key 0
let x1 = Item.Key 1

let status_line gtm tid =
  match Gtm.status gtm tid with
  | Gtm.Committed -> "committed"
  | Gtm.Aborted reason -> "aborted (" ^ reason ^ ")"
  | Gtm.Active -> "active"

let make_sites () =
  let bank = Local_dbms.create ~protocol:Types.Two_phase_locking ~durable:true 0 in
  let shop = Local_dbms.create ~protocol:Types.Two_phase_locking ~durable:true 1 in
  Local_dbms.load bank [ (x0, 100) ];
  Local_dbms.load shop [ (x1, 100) ];
  (bank, shop)

(* --- scene 1: what the coordinator writes down ------------------------- *)

let scene_1 () =
  print_endline "scene 1: a transfer commits; the GTM's durable log:";
  Types.reset_tids ();
  let bank, shop = make_sites () in
  let gtm =
    Gtm.create ~atomic_commit:true ~scheme:(Registry.make Registry.S3)
      ~sites:[ bank; shop ] ()
  in
  let t1 = Types.fresh_tid () in
  let transfer =
    Txn.global ~id:t1 [ (0, [ Op.Write (x0, -30) ]); (1, [ Op.Write (x1, 30) ]) ]
  in
  ignore (Gtm.run_global gtm transfer);
  Printf.printf "  T%d %s\n" t1 (status_line gtm t1);
  List.iter
    (fun r -> Format.printf "    %a@." Gtm_log.pp_record r)
    (Gtm_log.records (Gtm.gtm_log gtm))

(* --- scene 2: GTM crash, site crash, and the verdicts ------------------ *)

let scene_2 () =
  print_endline "\nscene 2: GTM + site crash; recovery resolves both ways:";
  Types.reset_tids ();
  let bank, shop = make_sites () in
  let gtm =
    Gtm.create ~atomic_commit:true ~scheme:(Registry.make Registry.S3)
      ~sites:[ bank; shop ] ()
  in
  let log = Gtm.gtm_log gtm in
  (* T1 is admitted but the GTM dies before deciding anything. *)
  let t1 = Types.fresh_tid () in
  Gtm.submit_global gtm
    (Txn.global ~id:t1 [ (0, [ Op.Read x0 ]); (1, [ Op.Read x1 ]) ]);
  (* T2 is a transfer the previous incarnation drove through both
     prepares and decided to commit — the decision is on disk, the commit
     messages never went out. *)
  let t2 = Types.fresh_tid () in
  let transfer =
    Txn.global ~id:t2 [ (0, [ Op.Write (x0, -30) ]); (1, [ Op.Write (x1, 30) ]) ]
  in
  let exec site tid action =
    match Local_dbms.submit site tid action with
    | Local_dbms.Executed _ -> ()
    | _ -> failwith "unexpected site answer"
  in
  exec bank t2 Op.Begin;
  exec bank t2 (Op.Write (x0, -30));
  exec bank t2 Op.Prepare;
  exec shop t2 Op.Begin;
  exec shop t2 (Op.Write (x1, 30));
  exec shop t2 Op.Prepare;
  Gtm_log.append log (Gtm_log.Admitted (transfer, true));
  Gtm_log.append log (Gtm_log.Decided (t2, Gtm_log.Commit));
  (* The bank crashes too: T2 survives there only as an in-doubt WAL
     entry, lock re-acquired. *)
  Local_dbms.crash bank;
  Printf.printf "  *** GTM CRASH; bank crash (in-doubt at bank: [%s]) ***\n"
    (String.concat ", "
       (List.map (Printf.sprintf "T%d") (Local_dbms.in_doubt bank)));
  let gtm = Gtm.recover ~old:gtm ~scheme:(Registry.make Registry.S3) in
  Printf.printf "  T%d (undecided)      -> %s\n" t1 (status_line gtm t1);
  Printf.printf "  T%d (Commit logged)  -> %s\n" t2 (status_line gtm t2);
  Printf.printf "  balances: bank x0=%d, shop x1=%d\n"
    (Local_dbms.storage_value bank x0)
    (Local_dbms.storage_value shop x1);
  if Gtm.status gtm t2 <> Gtm.Committed || Local_dbms.storage_value bank x0 <> 70
  then exit 1

(* --- scene 3: a whole faulty run, certified ---------------------------- *)

let scene_3 () =
  print_endline "\nscene 3: a seeded chaos run, certified end to end:";
  let mix =
    match Fault.parse_mix "crash=1,gtm=1,drop=0.05,dup=0.03" with
    | Ok mix -> mix
    | Error msg -> failwith msg
  in
  let config = Chaos.config_for ~mix ~seed:101 () in
  Format.printf "  plan: %a@." Fault.pp config.Des.faults;
  let run = Des.run_full config Registry.S3 in
  Format.printf "  @[<v>%a@]@." Des.pp_result run.Des.result;
  let checks = Chaos.check_run run in
  Printf.printf "  certified %b; atomic %b; wal-consistent %b\n"
    checks.Chaos.certified checks.Chaos.atomic checks.Chaos.wal_consistent;
  if not (Chaos.ok checks) then exit 1

let () =
  scene_1 ();
  scene_2 ();
  scene_3 ()
